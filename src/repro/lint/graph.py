"""Whole-program symbol table and call graph for the ``conc-*`` rules.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
the concurrency hazards introduced by the engine/service layer (a
blocking call reached *from* a coroutine, an attribute mutated from
*both* the event loop and a worker thread, a lock acquired in two
different orders in two different modules) are properties of paths
through the program, not of any single file. This module builds the
project view those rules need, in two stages that mirror the lint
engine's two-phase drive:

1. **Extraction** (:func:`extract_summary`) — one pass over a file's
   AST producing a :class:`ModuleSummary`: functions with their call
   sites (and the lock set lexically held at each), lock acquisitions,
   attribute mutations, awaits-under-lock, direct uses of blocking
   primitives, thread/executor targets and event-loop callback
   registrations, plus classes with their lock attributes and inferred
   attribute types, and the module's import alias table. Summaries are
   plain data (``to_dict``/``from_dict``) so the incremental lint cache
   can persist them and warm runs skip re-parsing entirely.

2. **Resolution** (:class:`ProjectGraph`) — joins every summary into a
   project-wide symbol table, resolves call references through import
   aliases, re-export chains and the symbolic type layer, and computes
   the derived sets the rules consume: functions reachable from the
   event loop, functions reachable from worker threads, and the
   transitive may-block set seeded from a table of known blocking
   primitives.

Types are **symbolic expressions**, not resolved names: extraction
records ``registry = obs.active()`` as the string ``obs.active()`` and
``registry.counter(name)`` as ``obs.active().counter()`` — a dotted
path whose trailing ``()`` means "the return type of calling this".
Calls whose final segment is Capitalised collapse to the class itself
(``Scheduler()`` has type ``Scheduler``, ``threading.Event()`` has type
``threading.Event``), so constructor results match the blocking tables
at extraction time. Everything else is resolved only in the project
phase (:meth:`ProjectGraph.resolve_type_expr`) by chaining return
annotations through the full symbol table. This split is what keeps
per-file summaries *cache-pure*: a summary depends on its own file's
bytes alone, so the incremental cache can persist it without tracking
cross-file invalidation.

Approximations (deliberate, documented in DESIGN.md):

* Unresolved ``x.meth()`` calls fall back to conservative edges to
  *every* project method named ``meth`` — but only when ``meth`` is not
  a ubiquitous protocol/builtin name (``get``, ``put``, ``close``, …);
  for those names the fallback would connect unrelated code and drown
  the rules in noise, so they resolve only through the type layer.
* Plain ``threading.Lock`` acquisition is *not* treated as blocking by
  ``conc-blocking-in-async`` (bounded critical sections; the lock-order
  and shared-state rules police lock usage instead), and neither are
  ``.write``/``.flush`` on already-open handles (the event-sink path is
  loop-legal by design: one line, flushed, no seeks).
* Locks are tracked while held via ``with`` blocks; a bare
  ``.acquire()`` records an acquisition edge but does not extend the
  lexically-held set over the statements that follow.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# -- blocking-primitive tables ----------------------------------------------

#: Calls to these bare names block (or may block) the calling thread.
BLOCKING_NAME_CALLS: Set[str] = {"open", "input"}

#: ``module.function`` calls that block the calling thread.
BLOCKING_MODULE_CALLS: Set[Tuple[str, str]] = {
    ("time", "sleep"),
    ("os", "system"),
    ("os", "waitpid"),
    ("select", "select"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("shutil", "copyfile"),
    ("shutil", "copytree"),
    ("shutil", "rmtree"),
}

#: Method names that block regardless of receiver type (no common
#: non-blocking builtin shares them).
BLOCKING_METHODS_ANY: Set[str] = {
    "read_text", "read_bytes", "write_text", "write_bytes",
    "recv", "recvfrom", "accept", "sendall",
}

#: ``(receiver type, method)`` pairs that block; receiver types are the
#: dotted names produced by the extraction-time type inference.
BLOCKING_TYPED_METHODS: Set[Tuple[str, str]] = {
    ("threading.Event", "wait"),
    ("threading.Thread", "join"),
    ("threading.Condition", "wait"),
    ("queue.Queue", "get"),
    ("queue.Queue", "put"),
    ("queue.Queue", "join"),
}

#: Callables whose construction yields a lock object (with/acquire).
_LOCK_FACTORY_NAMES = {"Lock", "RLock", "FileLock", "make_lock"}

#: Builtin/protocol method names excluded from the conservative
#: dynamic-dispatch fallback (see module docstring).
COMMON_METHOD_NAMES: Set[str] = {
    "add", "append", "clear", "close", "copy", "count", "decode",
    "discard", "emit", "encode", "extend", "find", "flush", "format",
    "get", "index", "insert", "items", "join", "keys", "lower", "open",
    "pop", "popitem", "put", "read", "readline", "readlines", "remove",
    "replace", "run", "send", "set", "setdefault", "sort", "split",
    "start", "startswith", "stop", "strip", "update", "upper", "values",
    "write", "writelines",
}

#: Event-loop callback registrars: (method name, callback arg index).
_LOOP_CALLBACK_REGISTRARS: Dict[str, int] = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_signal_handler": 1,
}

#: Executor-hop registrars: (method name, target arg index). The target
#: runs on a worker (thread or process), never on the caller's context.
_EXECUTOR_REGISTRARS: Dict[str, int] = {
    "submit": 0,
    "run_in_executor": 1,
    "to_thread": 0,
}

#: Calls that create a process pool (checked by conc-fork-after-threads).
_POOL_FACTORY_NAMES = {"ProcessPoolExecutor", "Pool", "make_pool"}

_SAFE_START_METHODS = {"spawn", "forkserver"}


# -- summary data model ------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body."""

    ref: Tuple[str, ...]        #: raw reference, see ``_ref_of``
    line: int
    col: int
    held: Tuple[str, ...]       #: lock ids lexically held at the call
    hop: bool = False           #: target escapes to another execution context
    awaited: bool = False       #: call is directly awaited
    recv_type: str = ""         #: dotted receiver type when inferable

    def to_dict(self) -> dict:
        return {
            "ref": list(self.ref), "line": self.line, "col": self.col,
            "held": list(self.held), "hop": self.hop,
            "awaited": self.awaited, "recv_type": self.recv_type,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            ref=tuple(data["ref"]), line=data["line"], col=data["col"],
            held=tuple(data["held"]), hop=data["hop"],
            awaited=data["awaited"], recv_type=data["recv_type"],
        )


@dataclass
class LockSite:
    """One lock acquisition (``with lock:`` or explicit ``.acquire()``)."""

    lock_id: str
    line: int
    col: int
    held_before: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "lock_id": self.lock_id, "line": self.line, "col": self.col,
            "held_before": list(self.held_before),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LockSite":
        return cls(
            lock_id=data["lock_id"], line=data["line"], col=data["col"],
            held_before=tuple(data["held_before"]),
        )


@dataclass
class Mutation:
    """An attribute store (``x.attr = / += ...``) on a typed object."""

    owner: str                  #: dotted type name owning the attribute
    attr: str
    line: int
    col: int
    held: Tuple[str, ...]
    in_init: bool = False

    def to_dict(self) -> dict:
        return {
            "owner": self.owner, "attr": self.attr, "line": self.line,
            "col": self.col, "held": list(self.held), "in_init": self.in_init,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Mutation":
        return cls(
            owner=data["owner"], attr=data["attr"], line=data["line"],
            col=data["col"], held=tuple(data["held"]), in_init=data["in_init"],
        )


@dataclass
class PoolSpawn:
    """A process-pool creation call site."""

    name: str
    line: int
    col: int
    safe_start_method: bool     #: carries start_method="spawn"/"forkserver"

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "safe_start_method": self.safe_start_method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PoolSpawn":
        return cls(
            name=data["name"], line=data["line"], col=data["col"],
            safe_start_method=data["safe_start_method"],
        )


@dataclass
class FunctionSummary:
    """Everything the project phase needs to know about one function."""

    qual: str                   #: e.g. ``Scheduler._count`` or ``helper``
    name: str
    line: int
    is_async: bool
    owner: str = ""             #: local class name when a method
    returns: str = ""           #: return-annotation type, unresolved
    calls: List[CallSite] = field(default_factory=list)
    acquires: List[LockSite] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    blocking: List[Tuple[int, int, str]] = field(default_factory=list)
    awaits_under_lock: List[Tuple[int, int, str]] = field(default_factory=list)
    thread_spawn_lines: List[int] = field(default_factory=list)
    pool_spawns: List[PoolSpawn] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qual": self.qual, "name": self.name, "line": self.line,
            "is_async": self.is_async, "owner": self.owner,
            "returns": self.returns,
            "calls": [c.to_dict() for c in self.calls],
            "acquires": [a.to_dict() for a in self.acquires],
            "mutations": [m.to_dict() for m in self.mutations],
            "blocking": [list(b) for b in self.blocking],
            "awaits_under_lock": [list(a) for a in self.awaits_under_lock],
            "thread_spawn_lines": list(self.thread_spawn_lines),
            "pool_spawns": [p.to_dict() for p in self.pool_spawns],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qual=data["qual"], name=data["name"], line=data["line"],
            is_async=data["is_async"], owner=data["owner"],
            returns=data["returns"],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            acquires=[LockSite.from_dict(a) for a in data["acquires"]],
            mutations=[Mutation.from_dict(m) for m in data["mutations"]],
            blocking=[tuple(b) for b in data["blocking"]],
            awaits_under_lock=[tuple(a) for a in data["awaits_under_lock"]],
            thread_spawn_lines=list(data["thread_spawn_lines"]),
            pool_spawns=[PoolSpawn.from_dict(p) for p in data["pool_spawns"]],
        )


@dataclass
class ClassSummary:
    """One class: its methods live in the module's function table."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)  #: raw base refs
    lock_attrs: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)
    method_names: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line, "bases": list(self.bases),
            "lock_attrs": list(self.lock_attrs),
            "attr_types": dict(self.attr_types),
            "method_names": list(self.method_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassSummary":
        return cls(
            name=data["name"], line=data["line"], bases=list(data["bases"]),
            lock_attrs=list(data["lock_attrs"]),
            attr_types=dict(data["attr_types"]),
            method_names=list(data["method_names"]),
        )


@dataclass
class ModuleSummary:
    """The per-file analysis product consumed by :class:`ProjectGraph`."""

    module: str                 #: dotted module name, e.g. ``repro.engine.scheduler``
    path: str
    imports: Dict[str, str] = field(default_factory=dict)  #: alias -> dotted target
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)
    #: raw refs of functions handed to threads/executors and to the loop
    thread_targets: List[List[str]] = field(default_factory=list)
    loop_callbacks: List[List[str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "module": self.module, "path": self.path,
            "imports": dict(self.imports),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "thread_targets": [list(t) for t in self.thread_targets],
            "loop_callbacks": [list(c) for c in self.loop_callbacks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"], path=data["path"],
            imports=dict(data["imports"]),
            functions=[FunctionSummary.from_dict(f) for f in data["functions"]],
            classes=[ClassSummary.from_dict(c) for c in data["classes"]],
            thread_targets=[list(t) for t in data["thread_targets"]],
            loop_callbacks=[list(c) for c in data["loop_callbacks"]],
        )


# -- module-name derivation --------------------------------------------------


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Files outside the package get a synthetic ``<stem>`` name; they can
    still participate in the graph (scripts are linted too) but nothing
    resolves *into* them via absolute imports.
    """
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            inner = parts[index + 1:-1]
            if stem == "__init__":
                return ".".join(["repro"] + inner)
            return ".".join(["repro"] + inner + [stem])
    return stem


# -- extraction --------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_type(node: Optional[ast.AST]) -> str:
    """Dotted type name from an annotation, unwrapping Optional/quotes."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1].strip()
        return text if all(p.isidentifier() for p in text.split(".")) else ""
    if isinstance(node, ast.Subscript):
        base = _dotted(node.value) or ""
        if base.split(".")[-1] == "Optional":
            return _annotation_type(node.slice)
        return ""
    if isinstance(node, ast.Index):  # pragma: no cover - py3.8 AST only
        return _annotation_type(node.value)  # type: ignore[attr-defined]
    return _dotted(node) or ""


def _ref_of(func: ast.AST) -> Optional[Tuple[str, ...]]:
    """Raw callee reference for a call's ``func`` expression.

    Forms: ``("name", f)`` for ``f(...)``; ``("self", m)`` for
    ``self.m(...)``; ``("var", base, rest)`` for ``base.rest(...)`` with
    a Name base; ``("selfattr", attr, m)`` for ``self.attr.m(...)``;
    ``("opaque", m)`` for a method on any other expression.
    """
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return ("self", func.attr)
            dotted = _dotted(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                return ("var", head, rest)
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return ("selfattr", base.attr, func.attr)
        return ("opaque", func.attr)
    return None


def _symbolic_call_type(node: ast.Call, type_of) -> str:
    """Symbolic type expression for a call (see module docstring).

    ``type_of`` types the receiver sub-expression (locals, ``self``
    attributes, chained calls); when it knows nothing the callee's raw
    dotted path is used so the project phase can resolve it through the
    import table. A Capitalised final segment collapses to the class
    itself (constructor call); anything else gains a trailing ``()``.
    """
    func = node.func
    if isinstance(func, ast.Attribute):
        recv = type_of(func.value)
        if recv:
            if func.attr[:1].isupper():
                return f"{recv}.{func.attr}"
            return f"{recv}.{func.attr}()"
    dotted = _dotted(func)
    if dotted:
        tail = dotted.split(".")[-1]
        if tail[:1].isupper():
            return dotted
        return dotted + "()"
    return ""


def _unwrap_partial(node: ast.AST) -> ast.AST:
    """``functools.partial(f, ...)`` -> ``f``."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func) or ""
        if name.split(".")[-1] == "partial" and node.args:
            return node.args[0]
    return node


def _call_keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _has_safe_start_method(call: ast.Call) -> bool:
    """Does a pool-factory call carry an explicit safe start method?

    Safe: a literal ``start_method="spawn"/"forkserver"``, a literal
    ``mp_context=get_context("spawn"/"forkserver")``, or a *non-literal*
    value for either keyword — the choice was made upstream, so the
    fork-after-threads rule checks the wrapper's callers instead
    (an unsafe literal like ``get_context("fork")`` stays flagged).
    """
    value = _call_keyword(call, "start_method")
    if isinstance(value, ast.Constant):
        if value.value in _SAFE_START_METHODS:
            return True
    elif value is not None:
        return True
    context = _call_keyword(call, "mp_context")
    if isinstance(context, ast.Call):
        name = _dotted(context.func) or ""
        if name.split(".")[-1] == "get_context" and context.args:
            first = context.args[0]
            if isinstance(first, ast.Constant):
                return first.value in _SAFE_START_METHODS
        return True
    if context is not None and not isinstance(context, ast.Constant):
        return True
    return False


class _FunctionExtractor:
    """Walks one function body tracking the lexically-held lock stack."""

    def __init__(self, extractor: "_ModuleExtractor", summary: FunctionSummary,
                 var_types: Dict[str, str]):
        self.extractor = extractor
        self.summary = summary
        self.var_types = var_types
        self.held: List[str] = []

    # -- type inference ------------------------------------------------------

    def type_of(self, node: ast.AST) -> str:
        """Symbolic type of an expression, or ``""`` when unknown."""
        if isinstance(node, ast.Name):
            return self.var_types.get(node.id, "")
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                owner = self.extractor.classes.get(self.summary.owner)
                if owner is not None:
                    return owner.attr_types.get(node.attr, "")
                return ""
            base_type = self.type_of(base)
            if base_type:
                return self.extractor.attr_type_of(base_type, node.attr)
            return ""
        if isinstance(node, ast.Call):
            return _symbolic_call_type(node, self.type_of)
        if isinstance(node, ast.Await):
            return ""
        return ""

    def _lock_id_of(self, node: ast.AST) -> str:
        """Lock id when ``node`` is a lock-valued expression, else ``""``."""
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                owner = self.extractor.classes.get(self.summary.owner)
                if owner is not None and node.attr in owner.lock_attrs:
                    return f"{self.extractor.module}.{owner.name}.{node.attr}"
        if isinstance(node, ast.Name):
            module_lock = self.extractor.module_locks.get(node.id)
            if module_lock:
                return module_lock
            var_type = self.var_types.get(node.id, "")
            if _is_lock_type(var_type):
                return _lock_type_id(var_type)
        if isinstance(node, ast.Call):
            func = node.func
            tail = (
                func.attr if isinstance(func, ast.Attribute)
                else (_dotted(func) or "").split(".")[-1]
            )
            if tail in ("FileLock", "lock"):
                # ``FileLock(path)`` directly, or the ``memo.lock(job)``
                # convention: methods named ``lock`` hand out the store's
                # cross-process file lock (one static node per hierarchy
                # level is exactly what lock-order analysis wants).
                return "repro.store.locks.FileLock"
        inferred = self.type_of(node)
        if _is_lock_type(inferred):
            return _lock_type_id(inferred)
        return ""

    # -- statement walk ------------------------------------------------------

    def walk_body(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.visit_stmt(statement)

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.extractor.extract_function(
                node, owner=self.summary.owner,
                prefix=self.summary.qual, outer_vars=self.var_types,
            )
            return
        if isinstance(node, ast.ClassDef):
            self.extractor.extract_class(node)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in node.items:
                self.visit_expr(item.context_expr)
                if isinstance(node, ast.With):
                    lock_id = self._lock_id_of(item.context_expr)
                    if lock_id:
                        self._record_acquire(lock_id, item.context_expr)
                        self.held.append(lock_id)
                        pushed += 1
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, item.context_expr)
            self.walk_body(node.body)
            for _ in range(pushed):
                self.held.pop()
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(node)
            return
        # Generic statement: visit child expressions, recurse into bodies.
        for expr in _stmt_exprs(node):
            self.visit_expr(expr)
        for body in _stmt_bodies(node):
            self.walk_body(body)

    def _record_acquire(self, lock_id: str, node: ast.AST) -> None:
        self.summary.acquires.append(
            LockSite(
                lock_id=lock_id,
                line=getattr(node, "lineno", self.summary.line),
                col=getattr(node, "col_offset", 0) + 1,
                held_before=tuple(self.held),
            )
        )

    def _bind_target(self, target: ast.AST, value: ast.AST) -> None:
        """Track ``name = <expr>`` for the local type environment."""
        if isinstance(target, ast.Name):
            inferred = self.type_of(value)
            if inferred:
                self.var_types[target.id] = inferred

    def _visit_assign(self, node: ast.stmt) -> None:
        value = getattr(node, "value", None)
        if value is not None:
            self.visit_expr(value)
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            self._visit_mutation_target(target, node)
            if value is not None and isinstance(node, ast.Assign):
                self._bind_target(target, value)
            elif isinstance(node, ast.AnnAssign) and isinstance(target, ast.Name):
                annotated = _annotation_type(node.annotation)
                if annotated:
                    self.var_types[target.id] = annotated

    def _visit_mutation_target(self, target: ast.AST, node: ast.stmt) -> None:
        in_init = self.summary.name == "__init__"
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._visit_mutation_target(element, node)
            return
        if isinstance(target, ast.Subscript):
            # ``x[...] = v`` mutates the container held by ``x``.
            self._visit_mutation_target(target.value, node)
            self.visit_expr(target.slice)
            return
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        owner = ""
        if isinstance(base, ast.Name) and base.id == "self":
            owner_class = self.extractor.classes.get(self.summary.owner)
            if owner_class is not None:
                owner = f"{self.extractor.module}.{owner_class.name}"
        else:
            owner = self.type_of(base)
        if owner:
            self.summary.mutations.append(
                Mutation(
                    owner=owner, attr=target.attr,
                    line=target.lineno, col=target.col_offset + 1,
                    held=tuple(self.held), in_init=in_init,
                )
            )

    # -- expression walk -----------------------------------------------------

    def visit_expr(self, node: Optional[ast.AST], awaited: bool = False) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            if self.held:
                self.summary.awaits_under_lock.append(
                    (node.lineno, node.col_offset + 1, self.held[-1])
                )
            self.visit_expr(node.value, awaited=True)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, awaited=awaited)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            self.visit_expr(child)

    def _visit_call(self, node: ast.Call, awaited: bool) -> None:
        ref = _ref_of(node.func)
        name = _dotted(node.func) or ""
        tail = name.split(".")[-1] if name else (
            node.func.attr if isinstance(node.func, ast.Attribute) else ""
        )
        hop = False

        # Thread / executor / loop-callback registrations.
        if tail == "Thread":
            target = _call_keyword(node, "target")
            if target is not None:
                target_ref = _ref_of(_unwrap_partial(target))
                if target_ref is not None:
                    self.extractor.summary.thread_targets.append(list(target_ref))
            self.summary.thread_spawn_lines.append(node.lineno)
        elif tail in _EXECUTOR_REGISTRARS:
            index = _EXECUTOR_REGISTRARS[tail]
            if len(node.args) > index:
                target_ref = _ref_of(_unwrap_partial(node.args[index]))
                if target_ref is not None:
                    self.extractor.summary.thread_targets.append(list(target_ref))
            hop = True
        elif tail in _LOOP_CALLBACK_REGISTRARS:
            index = _LOOP_CALLBACK_REGISTRARS[tail]
            if len(node.args) > index:
                target_ref = _ref_of(_unwrap_partial(node.args[index]))
                if target_ref is not None:
                    self.extractor.summary.loop_callbacks.append(list(target_ref))
            hop = True

        # Process-pool creation.
        if tail in _POOL_FACTORY_NAMES:
            self.summary.pool_spawns.append(
                PoolSpawn(
                    name=tail, line=node.lineno, col=node.col_offset + 1,
                    safe_start_method=_has_safe_start_method(node),
                )
            )

        # Direct blocking primitives.
        blocked = self._blocking_desc(node, name, tail)
        if blocked:
            self.summary.blocking.append(
                (node.lineno, node.col_offset + 1, blocked)
            )

        # Explicit .acquire() / .wait_released() on a lock-valued receiver.
        if tail in ("acquire", "wait_released") and isinstance(node.func, ast.Attribute):
            lock_id = self._lock_id_of(node.func.value)
            if lock_id:
                self._record_acquire(lock_id, node)

        if ref is not None:
            recv_type = ""
            if isinstance(node.func, ast.Attribute):
                recv_type = self.type_of(node.func.value)
            self.summary.calls.append(
                CallSite(
                    ref=ref, line=node.lineno, col=node.col_offset + 1,
                    held=tuple(self.held), hop=hop, awaited=awaited,
                    recv_type=recv_type,
                )
            )
        for arg in node.args:
            self.visit_expr(arg)
        for keyword in node.keywords:
            self.visit_expr(keyword.value)
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self.visit_expr(node.func)
        elif isinstance(node.func, ast.Attribute):
            self.visit_expr(node.func.value)

    def _blocking_desc(self, node: ast.Call, name: str, tail: str) -> str:
        """Description when this call is a known blocking primitive."""
        if isinstance(node.func, ast.Name):
            if node.func.id in BLOCKING_NAME_CALLS:
                return f"{node.func.id}()"
            resolved = self.extractor.imports.get(node.func.id, "")
            if tuple(resolved.rsplit(".", 1)) in BLOCKING_MODULE_CALLS:
                return resolved
            return ""
        if not isinstance(node.func, ast.Attribute):
            return ""
        if tail in BLOCKING_METHODS_ANY:
            return f".{tail}()"
        base = node.func.value
        if isinstance(base, ast.Name):
            resolved = self.extractor.imports.get(base.id, base.id)
            if (resolved, tail) in BLOCKING_MODULE_CALLS:
                return f"{resolved}.{tail}"
        recv_type = self.type_of(base)
        if recv_type and (recv_type, tail) in BLOCKING_TYPED_METHODS:
            return f"{recv_type}.{tail}()"
        return ""


def _is_lock_type(dotted: str) -> bool:
    tail = dotted.split(".")[-1]
    return dotted in ("threading.Lock", "threading.RLock") or tail in (
        "FileLock", "TrackedLock"
    )


def _lock_type_id(dotted: str) -> str:
    tail = dotted.split(".")[-1]
    if tail == "FileLock":
        return "repro.store.locks.FileLock"
    if tail == "TrackedLock":
        return "repro.lint.sanitize.TrackedLock"
    return dotted


def _stmt_exprs(node: ast.stmt) -> List[ast.AST]:
    """Top-level expressions of a statement (excluding nested bodies)."""
    exprs: List[ast.AST] = []
    for field_name, value in ast.iter_fields(node):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.expr))
    return exprs


def _stmt_bodies(node: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(node, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(node, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


class _ModuleExtractor:
    """Drives extraction over one module's AST."""

    def __init__(self, tree: ast.AST, module: str, path: str,
                 is_package: bool = False):
        self.module = module
        self.is_package = is_package
        self.summary = ModuleSummary(module=module, path=path)
        self.imports: Dict[str, str] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.module_locks: Dict[str, str] = {}
        self._tree = tree

    def attr_type_of(self, base_type: str, attr: str) -> str:
        """Attribute type on a *locally defined* class (best effort)."""
        local = self.classes.get(base_type.split(".")[-1])
        if local is not None:
            return local.attr_types.get(attr, "")
        return ""

    # -- extraction passes ---------------------------------------------------

    def run(self) -> ModuleSummary:
        body = getattr(self._tree, "body", [])
        self._collect_imports(body)
        self._collect_classes(body)
        self._collect_module_locks(body)
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.extract_function(item, owner=node.name)
        self.summary.imports = dict(self.imports)
        self.summary.classes = list(self.classes.values())
        return self.summary

    def _collect_imports(self, body: Sequence[ast.stmt]) -> None:
        package = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        for node in ast.walk(self._tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = self.module if self.is_package else package
                    parts = anchor.split(".") if anchor else []
                    if node.level > 1:
                        parts = parts[: -(node.level - 1)] if len(parts) >= node.level - 1 else []
                    base = ".".join(parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_classes(self, body: Sequence[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self.extract_class(node)

    def _collect_module_locks(self, body: Sequence[ast.stmt]) -> None:
        for node in body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = _dotted(node.value.func) or ""
            if name.split(".")[-1] not in _LOCK_FACTORY_NAMES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_locks[target.id] = f"{self.module}.{target.id}"

    def extract_class(self, node: ast.ClassDef) -> None:
        if node.name in self.classes:
            return
        summary = ClassSummary(
            name=node.name, line=node.lineno,
            bases=[_dotted(base) or "" for base in node.bases],
        )
        self.classes[node.name] = summary
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary.method_names.append(item.name)
                if item.name == "__init__":
                    self._collect_init_attrs(item, summary)
        # Annotated class-level attribute declarations.
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                annotated = _annotation_type(item.annotation)
                if annotated:
                    summary.attr_types.setdefault(item.target.id, annotated)

    def _collect_init_attrs(self, init: ast.AST, summary: ClassSummary) -> None:
        params: Dict[str, str] = {}
        arguments = getattr(init, "args", None)
        if arguments is not None:
            for arg in list(arguments.args) + list(arguments.kwonlyargs):
                annotated = _annotation_type(arg.annotation)
                if annotated:
                    params[arg.arg] = annotated

        def param_type(expr: ast.AST) -> str:
            if isinstance(expr, ast.Name):
                return params.get(expr.id, "")
            return ""

        for node in ast.walk(init):
            target: Optional[ast.Attribute] = None
            value: Optional[ast.AST] = None
            annotated = ""
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Attribute):
                    target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Attribute):
                    target, value = node.target, node.value
                    annotated = _annotation_type(node.annotation)
            if (
                target is None
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if annotated:
                summary.attr_types[attr] = annotated
            if isinstance(value, ast.Call):
                name = _dotted(value.func) or ""
                tail = name.split(".")[-1]
                if tail in _LOCK_FACTORY_NAMES:
                    summary.lock_attrs.append(attr)
                    summary.attr_types.setdefault(
                        attr,
                        name if name in ("threading.Lock", "threading.RLock")
                        else tail,
                    )
                else:
                    symbolic = _symbolic_call_type(value, param_type)
                    if symbolic:
                        summary.attr_types.setdefault(attr, symbolic)
            elif isinstance(value, ast.Name) and value.id in params:
                summary.attr_types.setdefault(attr, params[value.id])

    def extract_function(
        self,
        node: ast.AST,
        owner: str = "",
        prefix: str = "",
        outer_vars: Optional[Dict[str, str]] = None,
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = f"{prefix}.{name}" if prefix else (
            f"{owner}.{name}" if owner else name
        )
        summary = FunctionSummary(
            qual=qual, name=name,
            line=node.lineno,  # type: ignore[attr-defined]
            is_async=isinstance(node, ast.AsyncFunctionDef),
            owner=owner,
            returns=_annotation_type(getattr(node, "returns", None)),
        )
        self.summary.functions.append(summary)
        var_types: Dict[str, str] = dict(outer_vars or {})
        arguments = node.args  # type: ignore[attr-defined]
        for arg in list(arguments.args) + list(arguments.kwonlyargs):
            annotated = _annotation_type(arg.annotation)
            if annotated:
                var_types[arg.arg] = annotated
        walker = _FunctionExtractor(self, summary, var_types)
        walker.walk_body(node.body)  # type: ignore[attr-defined]


def extract_summary(tree: ast.AST, path: str) -> ModuleSummary:
    """Extract one file's :class:`ModuleSummary` from its parsed AST."""
    normalized = path.replace("\\", "/")
    extractor = _ModuleExtractor(
        tree, module_name_for(path), path,
        is_package=normalized.endswith("/__init__.py") or normalized == "__init__.py",
    )
    return extractor.run()


# -- project resolution ------------------------------------------------------


@dataclass
class FunctionNode:
    """A resolved function in the project graph."""

    fid: str
    module: str
    path: str
    summary: FunctionSummary
    owner_fid: str = ""         #: dotted class id when a method
    callees: List[Tuple[str, CallSite]] = field(default_factory=list)

    @property
    def is_async(self) -> bool:
        return self.summary.is_async


class ProjectGraph:
    """Symbol table + call graph over a set of :class:`ModuleSummary`."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.class_module: Dict[str, str] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}
        self._build_tables()
        self._link_calls()
        self.async_roots: Set[str] = set()
        self.loop_reachable: Set[str] = set()
        self.worker_roots: Set[str] = set()
        self.worker_reachable: Set[str] = set()
        self.may_block: Dict[str, Tuple[int, int, str]] = {}
        self._compute_contexts()
        self._compute_may_block()

    # -- table construction --------------------------------------------------

    def _build_tables(self) -> None:
        for module, summary in self.modules.items():
            for class_summary in summary.classes:
                dotted = f"{module}.{class_summary.name}"
                self.classes[dotted] = class_summary
                self.class_module[dotted] = module
            for function in summary.functions:
                fid = f"{module}.{function.qual}"
                owner_fid = f"{module}.{function.owner}" if function.owner else ""
                node = FunctionNode(
                    fid=fid, module=module, path=summary.path,
                    summary=function, owner_fid=owner_fid,
                )
                self.functions[fid] = node
                if function.owner:
                    self._methods_by_name.setdefault(function.name, []).append(fid)
        for dotted, class_summary in self.classes.items():
            module = self.class_module[dotted]
            for base_ref in class_summary.bases:
                base_fid = self._resolve_symbol(module, base_ref)
                if base_fid and base_fid in self.classes:
                    self._subclasses.setdefault(base_fid, []).append(dotted)

    def _resolve_symbol(self, module: str, dotted: str,
                        _seen: Optional[Set[str]] = None) -> str:
        """Resolve a (possibly aliased) dotted name to a project symbol id.

        Follows the module's import table and re-export chains
        (``from .scheduler import Scheduler`` in ``__init__``), with a
        cycle guard. Returns a class/function id, a module name, or the
        input unchanged when it leaves the project (stdlib etc.).
        """
        if not dotted:
            return ""
        seen = _seen or set()
        key = f"{module}::{dotted}"
        if key in seen:
            return dotted
        seen.add(key)
        summary = self.modules.get(module)
        head, _, rest = dotted.partition(".")
        if summary is not None and head in summary.imports:
            target = summary.imports[head]
            dotted = f"{target}.{rest}" if rest else target
        elif summary is not None:
            local = f"{module}.{head}"
            if local in self.classes or local in self.functions:
                dotted = f"{module}.{dotted}"
        # Find the longest known-module prefix, then walk attributes.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = parts[cut:]
                if not remainder:
                    return prefix
                current = prefix
                for index, attr in enumerate(remainder):
                    target_summary = self.modules[current]
                    candidate = f"{current}.{attr}"
                    if candidate in self.classes or candidate in self.functions:
                        trailing = remainder[index + 1:]
                        return ".".join([candidate] + trailing) if trailing else candidate
                    if attr in target_summary.imports:
                        next_dotted = ".".join(
                            [target_summary.imports[attr]] + remainder[index + 1:]
                        )
                        return self._resolve_symbol(current, next_dotted, seen)
                    if candidate in self.modules:
                        current = candidate
                        continue
                    return dotted
                return current
        if dotted in self.classes or dotted in self.functions:
            return dotted
        return dotted

    def resolve_type(self, module: str, type_ref: str) -> str:
        """Dotted project class id for a raw type reference, or the raw ref."""
        resolved = self._resolve_symbol(module, type_ref)
        return resolved

    # -- symbolic type resolution --------------------------------------------

    def resolve_type_expr(self, module: str, expr: str, _depth: int = 0) -> str:
        """Concrete type for a symbolic expression, relative to ``module``.

        ``obs.active().counter()`` peels the last ``().method()`` hop,
        resolves the receiver recursively, finds the method on the
        receiver's class and chains through its return annotation; the
        base cases are a plain symbol (class → itself, annotation alias)
        and a plain call (function/method → its return annotation).
        Returns ``""`` when any link is missing — unresolved stays
        unresolved rather than guessed.
        """
        if not expr or _depth > 8:
            return ""
        if not expr.endswith("()"):
            resolved = self._resolve_symbol(module, expr)
            if resolved in self.classes:
                return resolved
            return resolved
        inner = expr[:-2]
        split = inner.rfind("().")
        if split >= 0:
            receiver, method = inner[:split + 2], inner[split + 3:]
            recv_type = self.resolve_type_expr(module, receiver, _depth + 1)
            if not recv_type:
                return ""
            fid = self._method_on_type(recv_type, method)
            return self._returned_type(fid, _depth) if fid else ""
        target = self._resolve_symbol(module, inner)
        if target in self.classes:
            return target
        if target in self.functions:
            return self._returned_type(target, _depth)
        return ""

    def _returned_type(self, fid: str, _depth: int) -> str:
        """Resolve a function's return annotation in *its own* module."""
        node = self.functions.get(fid)
        if node is None or not node.summary.returns:
            return ""
        return self.resolve_type_expr(node.module, node.summary.returns, _depth + 1)

    # -- call linking --------------------------------------------------------

    def _method_on_type(self, type_id: str, method: str,
                        _seen: Optional[Set[str]] = None) -> str:
        """Find ``method`` on ``type_id`` or its project base classes."""
        seen = _seen or set()
        if type_id in seen:
            return ""
        seen.add(type_id)
        class_summary = self.classes.get(type_id)
        if class_summary is None:
            return ""
        if method in class_summary.method_names:
            module = self.class_module[type_id]
            return f"{module}.{class_summary.name}.{method}"
        for base_ref in class_summary.bases:
            base_id = self._resolve_symbol(self.class_module[type_id], base_ref)
            found = self._method_on_type(base_id, method, seen)
            if found:
                return found
        return ""

    def _typed_targets(self, type_id: str, method: str) -> List[str]:
        """Method on the type plus overrides in project subclasses."""
        targets = []
        primary = self._method_on_type(type_id, method)
        if primary:
            targets.append(primary)
        queue = deque(self._subclasses.get(type_id, []))
        while queue:
            sub = queue.popleft()
            queue.extend(self._subclasses.get(sub, []))
            class_summary = self.classes.get(sub)
            if class_summary and method in class_summary.method_names:
                targets.append(f"{self.class_module[sub]}.{sub.split('.')[-1]}.{method}")
        return targets

    def resolve_call(self, node: FunctionNode, site: CallSite) -> List[str]:
        """Function ids a call site may reach (empty = external/unknown)."""
        return self._resolve_call_impl(node, site)[0]

    def _resolve_call_impl(
        self, node: FunctionNode, site: CallSite
    ) -> Tuple[List[str], bool]:
        """Targets plus whether they came from the conservative fallback."""
        kind = site.ref[0]
        module = node.module
        if kind == "name":
            resolved = self._resolve_symbol(module, site.ref[1])
            if resolved in self.functions:
                return [resolved], False
            if resolved in self.classes:
                init = self._method_on_type(resolved, "__init__")
                return ([init] if init else []), False
            return [], False
        if kind == "self":
            if node.owner_fid:
                targets = self._typed_targets(node.owner_fid, site.ref[1])
                if targets:
                    return targets, False
            return [], False
        if kind == "var":
            base, rest = site.ref[1], site.ref[2]
            if site.recv_type:
                type_id = self.resolve_type_expr(module, site.recv_type)
                targets = self._typed_targets(type_id, rest.split(".")[-1])
                if targets:
                    return targets, False
                if type_id and type_id not in self.classes:
                    # Receiver type is known but external (stdlib etc.):
                    # the conservative fallback would wire unrelated
                    # project methods of the same name — don't.
                    return [], False
            resolved = self._resolve_symbol(module, f"{base}.{rest}")
            if resolved in self.functions:
                return [resolved], False
            if resolved in self.classes:
                init = self._method_on_type(resolved, "__init__")
                return ([init] if init else []), False
            return self._conservative(rest.split(".")[-1]), True
        if kind == "selfattr":
            attr, method = site.ref[1], site.ref[2]
            if site.recv_type:
                type_id = self.resolve_type_expr(module, site.recv_type)
                targets = self._typed_targets(type_id, method)
                if targets:
                    return targets, False
                if type_id and type_id not in self.classes:
                    return [], False
            if node.owner_fid:
                owner = self.classes.get(node.owner_fid)
                if owner is not None:
                    attr_type = owner.attr_types.get(attr, "")
                    if attr_type:
                        type_id = self.resolve_type_expr(module, attr_type)
                        targets = self._typed_targets(type_id, method)
                        if targets:
                            return targets, False
                        if type_id and type_id not in self.classes:
                            return [], False
            return self._conservative(method), True
        if kind == "opaque":
            method = site.ref[1]
            if site.recv_type:
                type_id = self.resolve_type_expr(module, site.recv_type)
                targets = self._typed_targets(type_id, method)
                if targets:
                    return targets, False
                if type_id and type_id not in self.classes:
                    return [], False
            return self._conservative(method), True
        return [], False

    def _conservative(self, method: str) -> List[str]:
        """Dynamic-dispatch fallback: every project method of that name.

        Skipped for ubiquitous builtin/protocol names — see module
        docstring — where the fallback would wire unrelated code.
        """
        if method in COMMON_METHOD_NAMES:
            return []
        return list(self._methods_by_name.get(method, []))

    def _link_calls(self) -> None:
        # recv_type is a symbolic expression recorded at extraction;
        # resolve_type_expr grounds it against the full symbol table here.
        for node in self.functions.values():
            for site in node.summary.calls:
                targets, conservative = self._resolve_call_impl(node, site)
                edge_site = site
                if site.hop and targets and not conservative:
                    # Extraction flags any ``x.submit(...)`` as an
                    # executor hop; when the receiver *typed-resolves* to
                    # a project method the call runs inline on the
                    # caller's context (e.g. ``Scheduler.submit``), so
                    # the edge must propagate that context after all.
                    edge_site = replace(site, hop=False)
                for target in targets:
                    if target in self.functions:
                        node.callees.append((target, edge_site))

    # -- context classification ----------------------------------------------

    def _resolve_target_ref(self, module: str, owner_fid: str,
                            ref: Sequence[str]) -> List[str]:
        site = CallSite(ref=tuple(ref), line=0, col=0, held=())
        probe = FunctionNode(
            fid="", module=module, path="",
            summary=FunctionSummary(qual="", name="", line=0, is_async=False),
            owner_fid=owner_fid,
        )
        return self.resolve_call(probe, site)

    def _module_roots(self, refs: List[List[str]], module: str) -> Set[str]:
        roots: Set[str] = set()
        summary = self.modules.get(module)
        class_ids = [
            f"{module}.{class_summary.name}"
            for class_summary in (summary.classes if summary else [])
        ]
        for ref in refs:
            if tuple(ref)[0] in ("self", "selfattr"):
                # A bound-method reference: try every class in the module
                # (the extraction loses the enclosing class for nested
                # closures, so this over-approximates within the module).
                for class_id in class_ids:
                    roots.update(self._resolve_target_ref(module, class_id, ref))
            else:
                roots.update(self._resolve_target_ref(module, "", ref))
        return {fid for fid in roots if fid in self.functions}

    def _reachable(self, roots: Set[str]) -> Set[str]:
        seen = set(roots)
        queue = deque(roots)
        while queue:
            fid = queue.popleft()
            node = self.functions.get(fid)
            if node is None:
                continue
            for target, site in node.callees:
                if site.hop:
                    continue  # target runs in another context
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def _compute_contexts(self) -> None:
        for module, summary in self.modules.items():
            for function in summary.functions:
                if function.is_async:
                    self.async_roots.add(f"{module}.{function.qual}")
            self.async_roots.update(
                self._module_roots(summary.loop_callbacks, module)
            )
            self.worker_roots.update(
                self._module_roots(summary.thread_targets, module)
            )
        self.loop_reachable = self._reachable(self.async_roots)
        self.worker_reachable = self._reachable(self.worker_roots)

    # -- may-block fixpoint --------------------------------------------------

    def _compute_may_block(self) -> None:
        """Transitive blocking: (line, col, chain description) per fid."""
        for fid, node in self.functions.items():
            if node.summary.blocking:
                line, col, desc = node.summary.blocking[0]
                self.may_block[fid] = (line, col, desc)
        changed = True
        while changed:
            changed = False
            for fid, node in self.functions.items():
                if fid in self.may_block:
                    continue
                for target, site in node.callees:
                    if site.hop:
                        continue
                    if site.awaited and self.functions[target].is_async:
                        continue  # awaiting a coroutine yields, not blocks
                    if target in self.may_block:
                        _, _, desc = self.may_block[target]
                        short = target.split(".")[-2:]
                        self.may_block[fid] = (
                            site.line, site.col,
                            f"{'.'.join(short)} -> {desc}",
                        )
                        changed = True
                        break

    # -- queries used by the rules -------------------------------------------

    def lexically_async(self, fid: str) -> bool:
        """In loop context by its own definition (async def or callback)."""
        return fid in self.async_roots

    def function_contexts(self, fid: str) -> Set[str]:
        contexts: Set[str] = set()
        if fid in self.loop_reachable:
            contexts.add("loop")
        if fid in self.worker_reachable:
            contexts.add("worker")
        return contexts


def build_project(summaries: Iterable[ModuleSummary]) -> ProjectGraph:
    """Join per-file summaries into the resolved project graph."""
    return ProjectGraph(summaries)
