"""Core machinery of ``repro.lint``: findings, rule registry, file walker.

The linter enforces the repo's reproducibility invariants (seeded RNG
only, no ambient wall clock in simulation paths, atomic artifact writes,
ordered iteration before serialization, ``__slots__`` on hot-path
classes). Every rule is a small AST pass registered here; the engine
parses each file once, hands the tree to every selected rule, then
applies per-line suppressions.

Suppressions
------------
A finding on line N is silenced by a comment on that line::

    handle = path.open("w")  # lint: ignore[io-atomic-write]

Several ids may be listed (``# lint: ignore[a, b]``); a bare
``# lint: ignore`` silences every rule on the line. Suppressions that
silence nothing are themselves reported (``lint-unused-suppression``),
so stale exemptions cannot linger after the underlying code is fixed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: Rule id reported for stale suppression comments.
UNUSED_SUPPRESSION = "lint-unused-suppression"
#: Rule id reported for files that fail to parse.
SYNTAX_ERROR = "lint-syntax-error"

_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\- ]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: str
    tree: ast.AST
    source: str
    #: Path components below the ``repro`` package (empty when the file
    #: is outside it), e.g. ``("dram", "controller.py")``.
    module_parts: Tuple[str, ...] = ()
    findings: List[Finding] = field(default_factory=list)

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                message=message,
            )
        )

    def in_package(self, *packages: str) -> bool:
        """True when the file lives under any of the named subpackages."""
        return bool(self.module_parts) and self.module_parts[0] in packages

    def is_module(self, *parts: str) -> bool:
        """True when the file is exactly ``repro/<parts...>``."""
        return self.module_parts == parts


class Rule:
    """Base class: subclasses set ``rule_id``/``description``, implement ``check``."""

    rule_id: str = ""
    description: str = ""

    def check(self, context: LintContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in rule modules once."""
    from . import rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def _module_parts(path: str) -> Tuple[str, ...]:
    parts = PurePosixPath(Path(path).as_posix()).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return tuple(parts)


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                suppressions[token.start[0]] = None
            else:
                names = {name.strip() for name in ids.split(",") if name.strip()}
                suppressions[token.start[0]] = names
    except tokenize.TokenError:
        pass  # parse errors are reported separately
    return suppressions


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    registry = all_rules()
    unknown = [
        rule_id
        for rule_id in list(select or []) + list(ignore or [])
        if rule_id not in registry and rule_id != UNUSED_SUPPRESSION
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    chosen = list(select) if select else list(registry)
    if ignore:
        chosen = [rule_id for rule_id in chosen if rule_id not in set(ignore)]
    return [registry[rule_id]() for rule_id in chosen if rule_id in registry]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file's contents; returns sorted findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                rule_id=SYNTAX_ERROR,
                message=f"file does not parse: {error.msg}",
            )
        ]

    context = LintContext(
        path=path, tree=tree, source=source, module_parts=_module_parts(path)
    )
    for rule in _select_rules(select, ignore):
        rule.check(context)

    suppressions = _parse_suppressions(source)
    used_lines: Set[int] = set()
    kept: List[Finding] = []
    for finding in context.findings:
        allowed = suppressions.get(finding.line, ())
        if allowed is None or (allowed and finding.rule_id in allowed):
            used_lines.add(finding.line)
        else:
            kept.append(finding)

    check_unused = (
        select is None or UNUSED_SUPPRESSION in select
    ) and UNUSED_SUPPRESSION not in set(ignore or [])
    if check_unused:
        for line in sorted(set(suppressions) - used_lines):
            ids = suppressions[line]
            label = "all rules" if ids is None else ", ".join(sorted(ids))
            kept.append(
                Finding(
                    path=path,
                    line=line,
                    col=1,
                    rule_id=UNUSED_SUPPRESSION,
                    message=f"suppression ({label}) matches no finding; remove it",
                )
            )
    return sorted(kept)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=file_path.as_posix(), select=select, ignore=ignore)
        )
    return sorted(findings)
