"""Core machinery of ``repro.lint``: findings, rule registry, file walker.

The linter enforces the repo's reproducibility invariants (seeded RNG
only, no ambient wall clock in simulation paths, atomic artifact writes,
ordered iteration before serialization, ``__slots__`` on hot-path
classes) plus the whole-program concurrency contracts of the engine and
service layer. The drive is two-phase:

1. **Per-file** — each file is parsed once; the per-file rules run over
   the tree and a :class:`~repro.lint.graph.ModuleSummary` is extracted
   for the project phase. Everything produced here depends only on the
   file's own bytes, so :class:`FileAnalysis` is what the incremental
   cache persists — a warm run re-parses only changed files.
2. **Project** — the summaries are joined into a
   :class:`~repro.lint.graph.ProjectGraph` and the
   :class:`ProjectRule` subclasses (the ``conc-*`` family) run over the
   resolved call graph. Project findings are recomputed every run; only
   the per-file extraction is cached.

Suppressions
------------
A finding on line N is silenced by a comment on that line::

    handle = path.open("w")  # lint: ignore[io-atomic-write]

Several ids may be listed (``# lint: ignore[a, b]``); a bare
``# lint: ignore`` silences every rule on the line. Matching is
anchored to *statement spans*, not single lines: a finding attributed
to a decorated function's ``def`` line can be suppressed on the
decorator line (or anywhere else in the statement's header), and a
multi-line call can carry its suppression on any of its lines.
Suppressions that silence nothing are themselves reported
(``lint-unused-suppression``), so stale exemptions cannot linger after
the underlying code is fixed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from .graph import ModuleSummary, ProjectGraph, build_project, extract_summary

#: Bumped when analysis semantics change; part of the cache key, so a
#: new engine never reuses summaries produced by an old one.
ENGINE_VERSION = 2

#: Rule id reported for stale suppression comments.
UNUSED_SUPPRESSION = "lint-unused-suppression"
#: Rule id reported for files that fail to parse.
SYNTAX_ERROR = "lint-syntax-error"

_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\- ]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a per-file rule needs to inspect one file."""

    path: str
    tree: ast.AST
    source: str
    #: Path components below the ``repro`` package (empty when the file
    #: is outside it), e.g. ``("dram", "controller.py")``.
    module_parts: Tuple[str, ...] = ()
    findings: List[Finding] = field(default_factory=list)

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                message=message,
            )
        )

    def in_package(self, *packages: str) -> bool:
        """True when the file lives under any of the named subpackages."""
        return bool(self.module_parts) and self.module_parts[0] in packages

    def is_module(self, *parts: str) -> bool:
        """True when the file is exactly ``repro/<parts...>``."""
        return self.module_parts == parts


class Rule:
    """Base class: subclasses set ``rule_id``/``description``, implement ``check``."""

    rule_id: str = ""
    description: str = ""

    def check(self, context: LintContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class ProjectLintContext:
    """Everything a project rule needs: the resolved call graph."""

    graph: ProjectGraph
    findings: List[Finding] = field(default_factory=list)

    def report(self, path: str, line: int, col: int,
               rule_id: str, message: str) -> None:
        self.findings.append(
            Finding(path=path, line=line, col=col,
                    rule_id=rule_id, message=message)
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole project graph.

    Subclasses implement :meth:`check_project`; the per-file ``check``
    is a no-op so a mixed registry can be driven uniformly.
    """

    def check(self, context: LintContext) -> None:
        return None

    def check_project(
        self, context: ProjectLintContext
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in rule modules once."""
    from . import rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def rule_fingerprint() -> str:
    """Identity of the rule set + engine, part of the lint cache key."""
    names = ",".join(sorted(all_rules()))
    return f"engine={ENGINE_VERSION};rules={names}"


def _module_parts(path: str) -> Tuple[str, ...]:
    parts = PurePosixPath(Path(path).as_posix()).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return tuple(parts)


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                suppressions[token.start[0]] = None
            else:
                names = {name.strip() for name in ids.split(",") if name.strip()}
                suppressions[token.start[0]] = names
    except tokenize.TokenError:
        pass  # parse errors are reported separately
    return suppressions


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line spans suppressions anchor over (see module docstring).

    ``def``/``class`` statements span from their first decorator line
    through the end of the header (the line before the body starts);
    every other statement spans its own lines. Only multi-line spans
    are kept — single-line statements already match exactly.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            start = node.lineno
            for decorator in node.decorator_list:
                start = min(start, decorator.lineno)
            body_start = node.body[0].lineno if node.body else node.lineno
            end = max(node.lineno, body_start - 1)
        else:
            start = node.lineno
            end = getattr(node, "end_lineno", None) or node.lineno
        if end > start:
            spans.append((start, end))
    return sorted(spans)


def _span_lookup(spans: Sequence[Tuple[int, int]]) -> Dict[int, Tuple[int, int]]:
    """Line -> smallest enclosing span (innermost statement wins)."""
    lookup: Dict[int, Tuple[int, int]] = {}
    for start, end in spans:
        for line in range(start, end + 1):
            current = lookup.get(line)
            if current is None or (end - start) < (current[1] - current[0]):
                lookup[line] = (start, end)
    return lookup


@dataclass
class FileAnalysis:
    """The cacheable product of the per-file phase for one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    spans: List[Tuple[int, int]] = field(default_factory=list)
    syntax_error: bool = False

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "findings": [f.to_dict() for f in self.findings],
            "summary": self.summary.to_dict() if self.summary else None,
            "suppressions": {
                str(line): (None if ids is None else sorted(ids))
                for line, ids in self.suppressions.items()
            },
            "spans": [list(span) for span in self.spans],
            "syntax_error": self.syntax_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileAnalysis":
        return cls(
            path=data["path"],
            findings=[
                Finding(
                    path=f["path"], line=f["line"], col=f["col"],
                    rule_id=f["rule"], message=f["message"],
                )
                for f in data["findings"]
            ],
            summary=(
                ModuleSummary.from_dict(data["summary"])
                if data["summary"] else None
            ),
            suppressions={
                int(line): (None if ids is None else set(ids))
                for line, ids in data["suppressions"].items()
            },
            spans=[tuple(span) for span in data["spans"]],
            syntax_error=data["syntax_error"],
        )


@dataclass
class LintReport:
    """Findings plus the cache tally for a :func:`lint_project` run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _expand_selectors(
    selectors: Sequence[str], registry: Dict[str, Type[Rule]]
) -> List[str]:
    """Expand family prefixes (``conc`` -> every ``conc-*`` rule)."""
    expanded: List[str] = []
    unknown: List[str] = []
    for selector in selectors:
        if selector in registry or selector == UNUSED_SUPPRESSION:
            expanded.append(selector)
            continue
        family = sorted(
            rule_id for rule_id in registry
            if rule_id.startswith(selector + "-")
        )
        if family:
            expanded.extend(family)
        else:
            unknown.append(selector)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return expanded


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    registry = all_rules()
    chosen = (
        _expand_selectors(select, registry) if select else list(registry)
    )
    if ignore:
        dropped = set(_expand_selectors(ignore, registry))
        chosen = [rule_id for rule_id in chosen if rule_id not in dropped]
    return [registry[rule_id]() for rule_id in chosen if rule_id in registry]


def _analyze_file(source: str, path: str) -> FileAnalysis:
    """Run the per-file phase for one file (parse, rules, extraction).

    Every registered per-file rule runs regardless of ``--select`` so
    the analysis is selection-independent — the cache can serve any
    later selection from the same entry; filtering happens at report
    time.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return FileAnalysis(
            path=path,
            findings=[
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    rule_id=SYNTAX_ERROR,
                    message=f"file does not parse: {error.msg}",
                )
            ],
            syntax_error=True,
        )
    context = LintContext(
        path=path, tree=tree, source=source, module_parts=_module_parts(path)
    )
    for rule_class in all_rules().values():
        if not issubclass(rule_class, ProjectRule):
            rule_class().check(context)
    return FileAnalysis(
        path=path,
        findings=context.findings,
        summary=extract_summary(tree, path),
        suppressions=_parse_suppressions(source),
        spans=_statement_spans(tree),
    )


def _run_project_rules(
    analyses: Sequence[FileAnalysis], rules: Sequence[Rule]
) -> List[Finding]:
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    if not project_rules:
        return []
    summaries = [a.summary for a in analyses if a.summary is not None]
    context = ProjectLintContext(graph=build_project(summaries))
    for rule in project_rules:
        rule.check_project(context)
    return context.findings


def _apply_suppressions(
    analysis: FileAnalysis,
    findings: Sequence[Finding],
    check_unused: bool,
) -> List[Finding]:
    """Filter one file's findings through its suppression table."""
    lookup = _span_lookup(analysis.spans)
    used_lines: Set[int] = set()
    kept: List[Finding] = []
    for finding in findings:
        candidates = [finding.line]
        span = lookup.get(finding.line)
        if span is not None:
            candidates.extend(
                line for line in range(span[0], span[1] + 1)
                if line != finding.line
            )
        matched: Optional[int] = None
        for candidate in candidates:
            if candidate not in analysis.suppressions:
                continue
            allowed = analysis.suppressions[candidate]
            if allowed is None or finding.rule_id in allowed:
                matched = candidate
                break
        if matched is not None:
            used_lines.add(matched)
        else:
            kept.append(finding)
    if check_unused:
        for line in sorted(set(analysis.suppressions) - used_lines):
            ids = analysis.suppressions[line]
            label = "all rules" if ids is None else ", ".join(sorted(ids))
            kept.append(
                Finding(
                    path=analysis.path,
                    line=line,
                    col=1,
                    rule_id=UNUSED_SUPPRESSION,
                    message=f"suppression ({label}) matches no finding; remove it",
                )
            )
    return kept


def _check_unused(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> bool:
    return (
        select is None or UNUSED_SUPPRESSION in select
    ) and UNUSED_SUPPRESSION not in set(ignore or [])


def _selected_file_findings(
    analysis: FileAnalysis, rules: Sequence[Rule]
) -> List[Finding]:
    """The analysis' findings narrowed to the selected per-file rules."""
    wanted = {
        rule.rule_id for rule in rules if not isinstance(rule, ProjectRule)
    }
    wanted.add(SYNTAX_ERROR)
    return [f for f in analysis.findings if f.rule_id in wanted]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file's contents; returns sorted findings.

    Project rules run too, over the one-file project — cross-file
    resolution is unavailable but same-file concurrency hazards (and
    the rule fixtures) are checked exactly as in a full run.
    """
    rules = _select_rules(select, ignore)
    analysis = _analyze_file(source, path)
    findings = _selected_file_findings(analysis, rules)
    if not analysis.syntax_error:
        findings.extend(_run_project_rules([analysis], rules))
    return sorted(
        _apply_suppressions(analysis, findings, _check_unused(select, ignore))
    )


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def lint_project(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    cache: Optional["LintCache"] = None,
) -> LintReport:
    """Two-phase lint of every ``.py`` file under ``paths``.

    With a :class:`~repro.lint.cache.LintCache`, per-file analyses are
    looked up by (content sha, rule fingerprint) and only missing files
    are parsed; the report carries the hit/miss tally.
    """
    rules = _select_rules(select, ignore)
    analyses: List[FileAnalysis] = []
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path = file_path.as_posix()
        analysis: Optional[FileAnalysis] = None
        if cache is not None:
            analysis = cache.get(path, source)
        if analysis is None:
            analysis = _analyze_file(source, path)
            report.cache_misses += 1
            if cache is not None and not analysis.syntax_error:
                cache.put(path, source, analysis)
        else:
            report.cache_hits += 1
        analyses.append(analysis)
    report.files = len(analyses)

    project_findings = _run_project_rules(analyses, rules)
    by_path: Dict[str, List[Finding]] = {}
    for finding in project_findings:
        by_path.setdefault(finding.path, []).append(finding)

    check_unused = _check_unused(select, ignore)
    for analysis in analyses:
        findings = _selected_file_findings(analysis, rules)
        findings.extend(by_path.get(analysis.path, []))
        report.findings.extend(
            _apply_suppressions(analysis, findings, check_unused)
        )
    report.findings.sort()
    return report


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    cache: Optional["LintCache"] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    return lint_project(paths, select=select, ignore=ignore, cache=cache).findings
