"""``repro.lint`` — determinism & invariant static analysis + sanitizers.

The reproduction's guarantees (figure stats bit-identical under
``--jobs N``, warm cache byte-identical to cold, crc32-stable seeding,
byte-identical results under any concurrency schedule) rest on
conventions no test exercises directly: randomness flows only through
seeded ``random.Random`` objects, simulation code never reads the wall
clock, every artifact write is atomic, nothing iterates a set into
serialized output, nothing blocks the service event loop, shared state
is written under its owning lock. This package turns those conventions
into machine-checked rules:

* :func:`lint_paths` / :func:`lint_project` / :func:`lint_source` — the
  two-phase whole-program linter (also ``python -m repro.lint src/``):
  a per-file phase (cached incrementally by content hash, see
  :mod:`repro.lint.cache`) and a project phase that builds the
  module-resolved call graph (:mod:`repro.lint.graph`) and runs the
  interprocedural ``conc-*`` concurrency rules. Per-line
  ``# lint: ignore[rule-id]`` suppressions (anchored to statement
  spans, so a decorated ``def``'s findings can be suppressed at the
  decorator) and unused-suppression detection;
* :mod:`repro.lint.sanitize` — runtime checkers behind flags: the
  :class:`~repro.lint.sanitize.TraceInvariantChecker` the sim drivers
  consult, the lock-order checker and event-loop stall monitor the
  service exposes (``serve --lock-order-check --stall-threshold-ms``),
  and the ``--check-determinism`` double-run harness.
"""

from .engine import (
    SYNTAX_ERROR,
    UNUSED_SUPPRESSION,
    Finding,
    LintContext,
    LintReport,
    ProjectLintContext,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
    register,
)

__all__ = [
    "SYNTAX_ERROR",
    "UNUSED_SUPPRESSION",
    "Finding",
    "LintContext",
    "LintReport",
    "ProjectLintContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
    "register",
]
