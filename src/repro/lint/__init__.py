"""``repro.lint`` — determinism & invariant static analysis + sanitizers.

The reproduction's guarantees (figure stats bit-identical under
``--jobs N``, warm cache byte-identical to cold, crc32-stable seeding)
rest on conventions no test exercises directly: randomness flows only
through seeded ``random.Random`` objects, simulation code never reads
the wall clock, every artifact write is atomic, nothing iterates a set
into serialized output. This package turns those conventions into
machine-checked rules:

* :func:`lint_paths` / :func:`lint_source` — AST linter (also
  ``python -m repro.lint src/``), with per-line
  ``# lint: ignore[rule-id]`` suppressions and unused-suppression
  detection;
* :mod:`repro.lint.sanitize` — runtime
  :class:`~repro.lint.sanitize.TraceInvariantChecker` the sim drivers
  consult behind a flag, plus the ``--check-determinism`` double-run
  harness.
"""

from .engine import (
    SYNTAX_ERROR,
    UNUSED_SUPPRESSION,
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "SYNTAX_ERROR",
    "UNUSED_SUPPRESSION",
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
