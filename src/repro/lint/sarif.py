"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code hosts ingest for inline review annotations; emitting it
makes ``python -m repro.lint --format sarif`` pluggable into GitHub
code scanning and editor SARIF viewers without an adapter.

Only the stable core of the spec is produced — tool driver, rule
metadata for the rules that actually fired, and one ``result`` per
finding with a physical location. Keys are emitted sorted and the
payload contains nothing volatile (no timestamps, no absolute paths,
no tool version), so the output is byte-reproducible and suitable for
golden-file testing.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import Finding, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/mocktails/repro"


def _rule_metadata(rule_ids: List[str]) -> List[dict]:
    registry = all_rules()
    rules = []
    for rule_id in rule_ids:
        entry: Dict[str, object] = {"id": rule_id}
        rule_class = registry.get(rule_id)
        if rule_class is not None and rule_class.description:
            entry["shortDescription"] = {"text": rule_class.description}
        rules.append(entry)
    return rules


def to_sarif(findings: List[Finding]) -> dict:
    """The findings as a SARIF 2.1.0 ``log`` object (plain dicts)."""
    fired = sorted({finding.rule_id for finding in findings})
    rule_index = {rule_id: index for index, rule_id in enumerate(fired)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": "warning",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": str(finding.path).replace("\\", "/"),
                            },
                            "region": {
                                "startLine": finding.line,
                                # SARIF columns are 1-based; findings
                                # carry ast's 0-based col_offset.
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": _rule_metadata(fired),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: List[Finding]) -> str:
    """Byte-stable serialized SARIF for ``--format sarif``."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
