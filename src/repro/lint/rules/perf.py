"""Performance rules: allocation discipline on the hot paths.

The modules below allocate objects per request, per burst or per cache
access; ``__slots__`` there is worth double-digit percent on end-to-end
replay (see PERFORMANCE.md) and also turns attribute typos into hard
errors. New classes in these modules must keep the discipline.
"""

from __future__ import annotations

import ast
from typing import Tuple

from ..engine import LintContext, Rule, register

#: Modules (relative to the ``repro`` package) whose classes allocate on
#: per-request / per-burst / per-access paths.
HOT_PATH_MODULES: Tuple[Tuple[str, ...], ...] = (
    ("core", "request.py"),
    ("core", "columnar.py"),
    ("cache", "cache.py"),
    ("cache", "batched.py"),
    ("dram", "controller.py"),
    ("dram", "address_map.py"),
    ("dram", "batched.py"),
    ("interconnect", "crossbar.py"),
    ("obs", "registry.py"),
    ("sample", "fingerprint.py"),
    ("sample", "cluster.py"),
    ("engine", "scheduler.py"),
    ("service", "protocol.py"),
    ("service", "server.py"),
    ("service", "client.py"),
)

_ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _decorator_call(node: ast.AST) -> Tuple[str, Tuple[ast.keyword, ...]]:
    if isinstance(node, ast.Call):
        return _base_name(node.func), tuple(node.keywords)
    return _base_name(node), ()


def _is_exempt(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = _base_name(base)
        if name in _ENUM_BASES or name.endswith(("Exception", "Error", "Warning")):
            return True
        if name == "BaseException":
            return True
    for decorator in class_def.decorator_list:
        name, keywords = _decorator_call(decorator)
        if name != "dataclass":
            continue
        for keyword in keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                # Frozen dataclasses are one-time immutable configs, not
                # hot-path allocations.
                return True
        # A dataclass with field defaults cannot carry a manual
        # __slots__ (class-attribute conflict), and the 3.9 floor rules
        # out @dataclass(slots=True) — exempt until the floor moves.
        for statement in class_def.body:
            if isinstance(statement, ast.AnnAssign) and statement.value is not None:
                return True
    return False


def _declares_slots(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "__slots__"
        ):
            return True
    return False


@register
class SlotsRule(Rule):
    """Classes in designated hot-path modules must declare ``__slots__``.

    Exempt: enums, exceptions, frozen dataclasses (one-time configs) and
    dataclasses with field defaults (unslottable under the 3.9 floor).
    """

    rule_id = "perf-slots"
    description = "hot-path class without __slots__"

    def check(self, context: LintContext) -> None:
        if context.module_parts not in HOT_PATH_MODULES:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt(node) or _declares_slots(node):
                continue
            context.report(
                node,
                self.rule_id,
                f"class {node.name} in a hot-path module must declare "
                "__slots__ (instances are allocated per request/access)",
            )
