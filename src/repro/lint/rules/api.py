"""API hygiene rules: traps that corrupt results quietly.

These are not style nits — a mutable default argument is shared across
every call and makes results depend on call history (the same class of
cross-run state the determinism rules hunt), and ``import *`` makes it
impossible to audit where a name (e.g. a shadowed ``open`` or
``random``) actually comes from.
"""

from __future__ import annotations

import ast

from ..engine import LintContext, Rule, register


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments persist state across calls."""

    rule_id = "api-mutable-default"
    description = "mutable default argument"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    context.report(
                        default,
                        self.rule_id,
                        f"mutable default in {node.name}(); default to None "
                        "and construct inside the body",
                    )


@register
class StarImportRule(Rule):
    """``from x import *`` hides the provenance of every name it binds."""

    rule_id = "api-star-import"
    description = "wildcard import"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == "*" for alias in node.names
            ):
                context.report(
                    node,
                    self.rule_id,
                    f"'from {node.module} import *' hides name provenance; "
                    "import names explicitly",
                )
