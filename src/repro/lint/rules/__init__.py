"""Built-in rule modules; importing this package registers every rule."""

from . import api, determinism, io, perf  # noqa: F401

__all__ = ["api", "determinism", "io", "perf"]
