"""Built-in rule modules; importing this package registers every rule."""

from . import api, concurrency, determinism, io, perf  # noqa: F401

__all__ = ["api", "concurrency", "determinism", "io", "perf"]
