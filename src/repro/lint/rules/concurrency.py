"""Concurrency rules: whole-program hazards of the engine/service layer.

All five rules are :class:`~repro.lint.engine.ProjectRule` subclasses
driven once over the resolved :class:`~repro.lint.graph.ProjectGraph`
(the lint engine's project phase). They police the contracts the
Mocktails fidelity claims rest on — byte-identical results under any
schedule:

``conc-blocking-in-async``
    A coroutine or event-loop callback reaches a blocking primitive
    (``time.sleep``, file/socket/subprocess I/O, ``Event.wait``, a
    blocking ``Queue``) without an executor hop. Reported at the call
    site inside the loop-context function, with the transitive chain.

``conc-await-under-lock``
    ``await`` while lexically holding a synchronous lock: the coroutine
    parks with the lock held and every thread contending on it stalls.

``conc-unguarded-shared-state``
    An attribute mutated from both loop and worker contexts with no
    common lock held across all mutation sites (``__init__`` sites are
    construction and exempt).

``conc-lock-order``
    Two locks acquired in inconsistent orders somewhere in the program
    (lexically nested ``with`` blocks, or a call made while holding a
    lock into code that takes another). A cycle in the acquisition
    graph is a deadlock schedule waiting to happen; a self-edge is a
    re-entrancy deadlock for non-reentrant locks.

``conc-fork-after-threads``
    A process pool created via ``fork`` in a function reachable from a
    worker thread (or lexically after spawning one): the child inherits
    the parent's lock states mid-flight. Safe when the spawn carries an
    explicit ``spawn``/``forkserver`` start method, or delegates the
    choice upward via a non-literal ``mp_context``/``start_method``.

Known approximations are documented in DESIGN.md ("Concurrency
analysis"); the guiding choice is to under-approximate reachability
(typed edges plus a name-matched conservative fallback) rather than
flood real code with speculative findings.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..engine import ProjectLintContext, ProjectRule, register
from ..graph import FunctionNode, ProjectGraph

BLOCKING_IN_ASYNC = "conc-blocking-in-async"
AWAIT_UNDER_LOCK = "conc-await-under-lock"
UNGUARDED_SHARED_STATE = "conc-unguarded-shared-state"
LOCK_ORDER = "conc-lock-order"
FORK_AFTER_THREADS = "conc-fork-after-threads"


@register
class BlockingInAsyncRule(ProjectRule):
    """Blocking primitive reachable from a coroutine without a hop."""

    rule_id = BLOCKING_IN_ASYNC
    description = "blocking call reachable from the event loop"

    def check_project(self, context: ProjectLintContext) -> None:
        graph = context.graph
        for fid in sorted(graph.async_roots):
            node = graph.functions.get(fid)
            if node is None or fid not in graph.may_block:
                continue
            line, col, chain = graph.may_block[fid]
            kind = "coroutine" if node.is_async else "event-loop callback"
            context.report(
                node.path, line, col, self.rule_id,
                f"{kind} {node.summary.qual} reaches blocking {chain}; "
                "hop through an executor (run_in_executor/to_thread) or "
                "use a non-blocking accessor",
            )


@register
class AwaitUnderLockRule(ProjectRule):
    """``await`` while lexically holding a synchronous lock."""

    rule_id = AWAIT_UNDER_LOCK
    description = "await while holding a synchronous lock"

    def check_project(self, context: ProjectLintContext) -> None:
        graph = context.graph
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            for line, col, lock_id in node.summary.awaits_under_lock:
                context.report(
                    node.path, line, col, self.rule_id,
                    f"{node.summary.qual} awaits while holding {lock_id}; "
                    "the coroutine parks with the lock held and every "
                    "thread contending on it stalls",
                )


@register
class UnguardedSharedStateRule(ProjectRule):
    """Attribute mutated from both loop and worker contexts, lockless."""

    rule_id = UNGUARDED_SHARED_STATE
    description = "cross-context attribute mutation without a common lock"

    def check_project(self, context: ProjectLintContext) -> None:
        graph = context.graph
        sites: Dict[Tuple[str, str], List[Tuple[FunctionNode, object]]] = {}
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            contexts = graph.function_contexts(fid)
            if not contexts:
                continue
            for mutation in node.summary.mutations:
                if mutation.in_init:
                    continue
                owner = graph.resolve_type_expr(node.module, mutation.owner)
                if owner not in graph.classes:
                    continue
                sites.setdefault((owner, mutation.attr), []).append(
                    (node, mutation)
                )
        for (owner, attr), entries in sorted(sites.items()):
            contexts: Set[str] = set()
            for node, _ in entries:
                contexts.update(graph.function_contexts(node.fid))
            if not ({"loop", "worker"} <= contexts):
                continue
            held_sets = [set(mutation.held) for _, mutation in entries]
            if set.intersection(*held_sets):
                continue  # every site holds a common guard
            anchor_node, anchor = min(
                (
                    (node, mutation)
                    for node, mutation in entries
                    if not mutation.held
                ),
                key=lambda pair: (pair[0].path, pair[1].line, pair[1].col),
                default=entries[0],
            )
            writers = sorted({node.summary.qual for node, _ in entries})
            context.report(
                anchor_node.path, anchor.line, anchor.col, self.rule_id,
                f"{owner}.{attr} is mutated from both loop and worker "
                f"contexts ({', '.join(writers)}) with no common lock "
                "held; guard every mutation site with the owning lock",
            )


@register
class LockOrderRule(ProjectRule):
    """Statically inconsistent lock-acquisition order."""

    rule_id = LOCK_ORDER
    description = "inconsistent lock acquisition order"

    def check_project(self, context: ProjectLintContext) -> None:
        graph = context.graph
        edges = self._acquisition_edges(graph)
        adjacency: Dict[str, Set[str]] = {}
        for (held, acquired) in edges:
            adjacency.setdefault(held, set()).add(acquired)
        for (held, acquired) in sorted(edges):
            node, line, col = edges[(held, acquired)]
            if held == acquired:
                context.report(
                    node.path, line, col, self.rule_id,
                    f"{node.summary.qual} acquires {acquired} while "
                    "already holding it — a self-deadlock for "
                    "non-reentrant locks",
                )
            elif self._reaches(adjacency, acquired, held):
                context.report(
                    node.path, line, col, self.rule_id,
                    f"{node.summary.qual} acquires {acquired} while "
                    f"holding {held}, but elsewhere {held} is acquired "
                    f"while holding {acquired}: a deadlock schedule "
                    "exists; fix the hierarchy to a single order",
                )

    @staticmethod
    def _reaches(adjacency: Dict[str, Set[str]], start: str, goal: str) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in adjacency.get(current, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _acquisition_edges(
        self, graph: ProjectGraph
    ) -> Dict[Tuple[str, str], Tuple[FunctionNode, int, int]]:
        # Transitive acquire sets, hop edges excluded (another context's
        # acquisitions are not nested under the caller's held set).
        transitive: Dict[str, Set[str]] = {
            fid: {site.lock_id for site in node.summary.acquires}
            for fid, node in graph.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for fid, node in graph.functions.items():
                mine = transitive[fid]
                for target, site in node.callees:
                    if site.hop:
                        continue
                    extra = transitive.get(target, set())
                    if not extra <= mine:
                        mine |= extra
                        changed = True
        edges: Dict[Tuple[str, str], Tuple[FunctionNode, int, int]] = {}

        def record(held: str, acquired: str,
                   node: FunctionNode, line: int, col: int) -> None:
            key = (held, acquired)
            if key not in edges:
                edges[key] = (node, line, col)

        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            for site in node.summary.acquires:
                for held in site.held_before:
                    record(held, site.lock_id, node, site.line, site.col)
            for target, call in node.callees:
                if call.hop or not call.held:
                    continue
                for acquired in sorted(transitive.get(target, ())):
                    for held in call.held:
                        record(held, acquired, node, call.line, call.col)
        return edges


@register
class ForkAfterThreadsRule(ProjectRule):
    """Process pool forked where worker threads may already run."""

    rule_id = FORK_AFTER_THREADS
    description = "fork-based process pool reachable after thread creation"

    def check_project(self, context: ProjectLintContext) -> None:
        graph = context.graph
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            for spawn in node.summary.pool_spawns:
                if spawn.safe_start_method:
                    continue
                lexical = [
                    line for line in node.summary.thread_spawn_lines
                    if line < spawn.line
                ]
                if fid in graph.worker_reachable:
                    context.report(
                        node.path, spawn.line, spawn.col, self.rule_id,
                        f"{node.summary.qual} creates a process pool "
                        f"({spawn.name}) and is reachable from a worker "
                        "thread: a fork start method inherits lock state "
                        "mid-flight; pass start_method=\"forkserver\" or "
                        "\"spawn\"",
                    )
                elif lexical:
                    context.report(
                        node.path, spawn.line, spawn.col, self.rule_id,
                        f"{node.summary.qual} creates a process pool "
                        f"({spawn.name}) after spawning a thread on line "
                        f"{lexical[0]}; use start_method=\"forkserver\" "
                        "or \"spawn\"",
                    )
