"""Determinism rules: the invariants behind bit-identical figure stats.

Every headline claim of this reproduction — serial == parallel, warm
cache == cold, crc32-stable workload seeding — assumes simulation paths
draw randomness only from explicitly seeded generators, never read the
ambient clock, and never let hash-order leak into outputs. These rules
make those conventions machine-checked.
"""

from __future__ import annotations

import ast
from typing import Set

from ..engine import LintContext, Rule, register

#: ``random`` module attributes that construct an explicitly seeded
#: generator (the sanctioned pattern) rather than draw from global state.
_ALLOWED_RANDOM_ATTRS = {"Random"}

#: ``numpy.random`` attributes that construct seedable generator objects.
_ALLOWED_NP_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
    "BitGenerator",
}

#: Wall-clock accessors banned outside ``repro.obs`` (which owns the
#: sanctioned choke point, :func:`repro.obs.clock.wall_time`).
_WALL_CLOCK_TIME_ATTRS = {"time", "time_ns"}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _import_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names that ``import <module>`` / ``import <module> as x`` bind."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(module + "."):
                    # ``import numpy.random`` binds the top-level name.
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def _from_imports(tree: ast.AST, module: str):
    """Yield ``(bound_name, original_name, node)`` for ``from <module> import``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                yield alias.asname or alias.name, alias.name, node


@register
class UnseededRandomRule(Rule):
    """Global-state RNG draws break seeded reproducibility.

    ``random.random()``/``random.shuffle()`` (and ``np.random.*``) pull
    from an interpreter-wide generator that any import or thread can
    perturb; every stochastic component here must thread an explicit
    ``random.Random(seed)`` (or ``np.random.default_rng(seed)``).
    """

    rule_id = "det-unseeded-random"
    description = "module-level RNG call; use an explicit random.Random(seed)"

    def check(self, context: LintContext) -> None:
        tree = context.tree
        random_aliases = _import_aliases(tree, "random")
        numpy_aliases = _import_aliases(tree, "numpy")

        for _, original, node in _from_imports(tree, "random"):
            if original not in _ALLOWED_RANDOM_ATTRS:
                context.report(
                    node,
                    self.rule_id,
                    f"'from random import {original}' draws from the global RNG; "
                    "construct random.Random(seed) instead",
                )
        for _, original, node in _from_imports(tree, "numpy.random"):
            if original not in _ALLOWED_NP_RANDOM_ATTRS:
                context.report(
                    node,
                    self.rule_id,
                    f"'from numpy.random import {original}' uses numpy's global "
                    "RNG; use numpy.random.default_rng(seed)",
                )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id in random_aliases
                and node.attr not in _ALLOWED_RANDOM_ATTRS
            ):
                context.report(
                    node,
                    self.rule_id,
                    f"random.{node.attr} uses the global RNG; "
                    "thread an explicit random.Random(seed)",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
                and node.attr not in _ALLOWED_NP_RANDOM_ATTRS
            ):
                context.report(
                    node,
                    self.rule_id,
                    f"numpy.random.{node.attr} uses numpy's global RNG; "
                    "use numpy.random.default_rng(seed)",
                )


@register
class WallClockRule(Rule):
    """Ambient wall clock reads are banned outside ``repro.obs``.

    ``time.time()`` / ``datetime.now()`` make output depend on when the
    run happened. Simulation and storage code must take time as data or
    call the one sanctioned accessor, :func:`repro.obs.clock.wall_time`
    (elapsed-time measurement should use ``time.perf_counter``, which
    this rule deliberately allows).
    """

    rule_id = "det-wall-clock"
    description = "wall-clock read outside repro.obs"

    def check(self, context: LintContext) -> None:
        if context.in_package("obs"):
            return
        tree = context.tree
        time_aliases = _import_aliases(tree, "time")
        datetime_module_aliases = _import_aliases(tree, "datetime")
        datetime_class_names = {
            bound
            for bound, original, _ in _from_imports(tree, "datetime")
            if original in ("datetime", "date")
        }

        for _, original, node in _from_imports(tree, "time"):
            if original in _WALL_CLOCK_TIME_ATTRS:
                context.report(
                    node,
                    self.rule_id,
                    f"'from time import {original}' imports the wall clock; "
                    "use repro.obs.clock.wall_time() or time.perf_counter()",
                )

        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in time_aliases
                and func.attr in _WALL_CLOCK_TIME_ATTRS
            ):
                context.report(
                    node,
                    self.rule_id,
                    f"time.{func.attr}() reads the wall clock; use "
                    "repro.obs.clock.wall_time() (or time.perf_counter "
                    "for elapsed time)",
                )
            elif func.attr in _WALL_CLOCK_DATETIME_ATTRS and (
                (isinstance(receiver, ast.Name) and receiver.id in datetime_class_names)
                or (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr in ("datetime", "date")
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in datetime_module_aliases
                )
            ):
                context.report(
                    node,
                    self.rule_id,
                    f"datetime {func.attr}() reads the wall clock; "
                    "use repro.obs.clock.wall_time()",
                )


def _is_float_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    return False


@register
class FloatCompareRule(Rule):
    """Exact ``==``/``!=`` against floats is representation-dependent.

    Metric values accumulate rounding; exact comparison against a float
    literal silently flips with evaluation order. Compare integers, use
    ``math.isclose``, or compare against an explicit tolerance.
    """

    rule_id = "det-float-compare"
    description = "exact ==/!= comparison against a float"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_float_operand(left) or _is_float_operand(right):
                    context.report(
                        node,
                        self.rule_id,
                        "exact ==/!= against a float; use math.isclose or "
                        "an explicit tolerance",
                    )
                    break


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically recognizable set-valued expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expression(func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register
class SetIterationRule(Rule):
    """Iterating a set feeds hash order into downstream output.

    Set iteration order depends on ``PYTHONHASHSEED`` for strings, so a
    loop or ``list(set(...))`` dedupe over a set can reorder serialized
    output between runs. Wrap the set in ``sorted(...)`` before
    iterating.
    """

    rule_id = "det-set-iteration"
    description = "iteration over a set without sorted()"

    _MESSAGE = (
        "iterating a set is hash-order dependent; wrap it in sorted(...) "
        "before iterating"
    )

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(comp.iter for comp in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expression(candidate):
                    context.report(candidate, self.rule_id, self._MESSAGE)
