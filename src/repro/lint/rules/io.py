"""I/O rules: every artifact write must be crash-safe, every hot-path
read bounded.

The result store's warm==cold guarantee assumes no reader can ever
observe a truncated artifact, which holds only if every write in the
repo funnels through :mod:`repro.store.atomic` (temp file + fsync +
same-directory ``os.replace``). A bare ``open(path, "w")`` reintroduces
the torn-write window that helper exists to close.

Similarly, the streaming pipeline's O(block) memory bound holds only if
no trace/profile loader slurps a whole file in one call: a single
``handle.read()`` in a hot I/O module silently reintroduces the
O(trace) peak the out-of-core refactor removed (see
``io-unbounded-read``).
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from ..engine import LintContext, Rule, register

#: A plausible ``open`` mode string: only mode characters, short.
_MODE_RE = re.compile(r"^[rwaxbt+U]{1,4}$")


def _write_mode(call: ast.Call, mode_arg_index: int) -> Optional[str]:
    """The literal write mode of an ``open``-style call, if statically visible."""
    candidates = []
    if len(call.args) > mode_arg_index:
        candidates.append(call.args[mode_arg_index])
    for keyword in call.keywords:
        if keyword.arg == "mode":
            candidates.append(keyword.value)
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            mode = candidate.value
            if _MODE_RE.match(mode) and any(ch in mode for ch in "wax"):
                return mode
    return None


#: The modules whose reads sit on the trace/profile hot path: file sizes
#: there scale with trace length, so an unbounded read is an O(trace)
#: memory spike. ``("stream",)`` covers the whole streaming package.
_HOT_READ_MODULES = (
    ("core", "trace.py"),
    ("core", "serialization.py"),
    ("core", "ioutil.py"),
)


def _is_unbounded_size(call: ast.Call) -> bool:
    """True when a ``.read`` call asks for everything at once."""
    if len(call.args) > 1 or call.keywords:
        return False  # not a plain .read(size) shape; out of scope
    if not call.args:
        return True
    size = call.args[0]
    if isinstance(size, ast.Constant):
        return size.value is None
    # -1 parses as UnaryOp(USub, Constant(1)).
    return (
        isinstance(size, ast.UnaryOp)
        and isinstance(size.op, ast.USub)
        and isinstance(size.operand, ast.Constant)
        and size.operand.value == 1
    )


@register
class UnboundedReadRule(Rule):
    """Trace/profile hot paths must read in bounded chunks.

    Flags argless ``.read()`` (and the equivalent ``.read(-1)`` /
    ``.read(None)``) plus ``Path.read_bytes``/``read_text`` inside the
    modules that open trace or profile files: those files scale with
    trace length, so one unbounded read is an O(trace) allocation.
    Bounded reads (``.read(CHUNK_BYTES)``) pass. A deliberate
    whole-file read of a small artifact documents the exception with
    ``# lint: ignore[io-unbounded-read]``.
    """

    rule_id = "io-unbounded-read"
    description = "unbounded file read on a trace/profile hot path"

    def check(self, context: LintContext) -> None:
        hot = context.in_package("stream") or any(
            context.is_module(*parts) for parts in _HOT_READ_MODULES
        )
        if not hot:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "read" and _is_unbounded_size(node):
                context.report(
                    node,
                    self.rule_id,
                    ".read() slurps the whole stream; read in bounded "
                    "chunks (see repro.core.ioutil / repro.stream)",
                )
            elif func.attr in ("read_bytes", "read_text"):
                context.report(
                    node,
                    self.rule_id,
                    f".{func.attr}(...) materializes the whole file; read "
                    "in bounded chunks (see repro.core.ioutil / repro.stream)",
                )


@register
class AtomicWriteRule(Rule):
    """File writes must go through ``repro.store.atomic``.

    Flags ``open(..., "w")``, ``Path.open("w")`` (any mode containing
    ``w``/``a``/``x``) and ``Path.write_text``/``write_bytes``. The
    implementation module itself is exempt. Streaming sinks that flush
    line-by-line on purpose (e.g. the JSONL event sink) document the
    exception with ``# lint: ignore[io-atomic-write]``.
    """

    rule_id = "io-atomic-write"
    description = "non-atomic file write; use repro.store.atomic"

    def check(self, context: LintContext) -> None:
        if context.is_module("store", "atomic.py"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node, 1)
                if mode is not None:
                    context.report(
                        node,
                        self.rule_id,
                        f"open(..., {mode!r}) is not crash-safe; use "
                        "repro.store.atomic.atomic_write_text/bytes",
                    )
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                # Path.open("w") puts the mode first; gzip.open(path, "wt")
                # puts it second — check both slots.
                mode = _write_mode(node, 0) or _write_mode(node, 1)
                if mode is not None:
                    context.report(
                        node,
                        self.rule_id,
                        f".open(..., {mode!r}) is not crash-safe; use "
                        "repro.store.atomic.atomic_write_text/bytes",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                context.report(
                    node,
                    self.rule_id,
                    f".{func.attr}(...) is not crash-safe; use "
                    "repro.store.atomic.atomic_write_text/bytes",
                )
