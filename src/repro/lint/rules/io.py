"""I/O rules: every artifact write must be crash-safe.

The result store's warm==cold guarantee assumes no reader can ever
observe a truncated artifact, which holds only if every write in the
repo funnels through :mod:`repro.store.atomic` (temp file + fsync +
same-directory ``os.replace``). A bare ``open(path, "w")`` reintroduces
the torn-write window that helper exists to close.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from ..engine import LintContext, Rule, register

#: A plausible ``open`` mode string: only mode characters, short.
_MODE_RE = re.compile(r"^[rwaxbt+U]{1,4}$")


def _write_mode(call: ast.Call, mode_arg_index: int) -> Optional[str]:
    """The literal write mode of an ``open``-style call, if statically visible."""
    candidates = []
    if len(call.args) > mode_arg_index:
        candidates.append(call.args[mode_arg_index])
    for keyword in call.keywords:
        if keyword.arg == "mode":
            candidates.append(keyword.value)
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            mode = candidate.value
            if _MODE_RE.match(mode) and any(ch in mode for ch in "wax"):
                return mode
    return None


@register
class AtomicWriteRule(Rule):
    """File writes must go through ``repro.store.atomic``.

    Flags ``open(..., "w")``, ``Path.open("w")`` (any mode containing
    ``w``/``a``/``x``) and ``Path.write_text``/``write_bytes``. The
    implementation module itself is exempt. Streaming sinks that flush
    line-by-line on purpose (e.g. the JSONL event sink) document the
    exception with ``# lint: ignore[io-atomic-write]``.
    """

    rule_id = "io-atomic-write"
    description = "non-atomic file write; use repro.store.atomic"

    def check(self, context: LintContext) -> None:
        if context.is_module("store", "atomic.py"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node, 1)
                if mode is not None:
                    context.report(
                        node,
                        self.rule_id,
                        f"open(..., {mode!r}) is not crash-safe; use "
                        "repro.store.atomic.atomic_write_text/bytes",
                    )
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                # Path.open("w") puts the mode first; gzip.open(path, "wt")
                # puts it second — check both slots.
                mode = _write_mode(node, 0) or _write_mode(node, 1)
                if mode is not None:
                    context.report(
                        node,
                        self.rule_id,
                        f".open(..., {mode!r}) is not crash-safe; use "
                        "repro.store.atomic.atomic_write_text/bytes",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                context.report(
                    node,
                    self.rule_id,
                    f".{func.attr}(...) is not crash-safe; use "
                    "repro.store.atomic.atomic_write_text/bytes",
                )
