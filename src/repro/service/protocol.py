"""Wire protocol for the job-queue service: newline-delimited JSON.

One request or response per line, UTF-8, ``\\n``-terminated. The framing
is deliberately primitive — any language with a socket and a JSON parser
is a client — and every message is a flat JSON object with a ``type``
(responses) or ``op`` (requests) discriminator.

Requests::

    {"op": "submit", "id": 7, "kind": "evaluate",
     "params": {"name": "trex1", "num_requests": 2000}, "events": true}
    {"op": "ping"}
    {"op": "stats"}

Responses::

    {"type": "ack",    "id": 7, "job_id": 12, "state": "queued",
     "deduped": false}
    {"type": "event",  "id": 7, "job_id": 12, "state": "running"}
    {"type": "result", "id": 7, "job_id": 12, "state": "done",
     "source": "executed", "payload": {...}}
    {"type": "error",  "id": 7, "code": "queue-full", "message": "..."}
    {"type": "pong"}
    {"type": "stats",  "server": {...}, "engine": {...}}

``id`` is an opaque client-chosen correlation value echoed on every
response to that request, so one connection can interleave submissions.
Exactly one terminal response (``result`` or ``error``) arrives per
``submit``; ``event`` responses only flow when the submit asked for
``"events": true``.

Error codes (:data:`ERROR_CODES`) are the service's whole failure
vocabulary — clients branch on ``code``, never on message text.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: One line (one message) may not exceed this many bytes on the wire.
MAX_LINE_BYTES = 1 << 20

#: Request was malformed or named an impossible job (unknown kind,
#: unknown workload, bad parameter type).
BAD_REQUEST = "bad-request"
#: The engine's bounded queue is at capacity; retry later.
QUEUE_FULL = "queue-full"
#: This connection has too many unfinished submissions outstanding.
QUOTA_EXCEEDED = "quota-exceeded"
#: The job ran and failed (worker crash with retries exhausted, or the
#: computation raised).
JOB_FAILED = "job-failed"
#: The line was not a JSON object / exceeded the line limit / had no
#: recognizable ``op``.
PROTOCOL_ERROR = "protocol-error"
#: The server is draining; the job was not (fully) processed.
SHUTTING_DOWN = "shutting-down"

ERROR_CODES = (
    BAD_REQUEST,
    JOB_FAILED,
    PROTOCOL_ERROR,
    QUEUE_FULL,
    QUOTA_EXCEEDED,
    SHUTTING_DOWN,
)


class ProtocolError(ValueError):
    """A line that cannot be parsed into a protocol message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as its wire line (compact JSON + newline)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
        + b"\n"
    )


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# Response builders (the server's side of the vocabulary)
# ---------------------------------------------------------------------------


def ack_response(
    request_id: Any, job_id: int, state: str, deduped: bool
) -> Dict[str, Any]:
    return {
        "type": "ack",
        "id": request_id,
        "job_id": job_id,
        "state": state,
        "deduped": deduped,
    }


def event_response(request_id: Any, job_id: int, state: str) -> Dict[str, Any]:
    return {"type": "event", "id": request_id, "job_id": job_id, "state": state}


def result_response(
    request_id: Any, job_id: int, source: Optional[str], payload: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "type": "result",
        "id": request_id,
        "job_id": job_id,
        "state": "done",
        "source": source,
        "payload": payload,
    }


def error_response(
    code: str, message: str, request_id: Any = None, job_id: Optional[int] = None
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    response: Dict[str, Any] = {"type": "error", "code": code, "message": message}
    if request_id is not None:
        response["id"] = request_id
    if job_id is not None:
        response["job_id"] = job_id
    return response
