"""Asyncio job-queue server: the network face of :mod:`repro.engine`.

One event-loop thread owns every connection; the engine's worker threads
(and their process pool) do the actual computing. The two sides meet at
exactly one seam: scheduler listeners — which fire on engine worker
threads — hop back onto the loop with ``call_soon_threadsafe``, and from
there every per-connection write funnels through that connection's
outbox queue, so wire lines never interleave mid-message.

Admission control happens *before* a job touches the engine, in order:

1. **Quota** — each connection may have at most ``client_quota``
   unfinished submissions (``quota-exceeded``);
2. **Validation** — the kind/params must build a real job via
   :func:`repro.engine.job_from_wire` (``bad-request``);
3. **Backpressure** — the engine's bounded queue may reject
   (``queue-full``).

Each rejection is a structured error on the wire, never a dropped
connection. Past admission, the contract is: exactly one terminal
response per submit — a ``result`` when the job lands DONE, a
``job-failed`` error when it lands FAILED (including after a
worker-crash retry) — so a well-behaved client can always just read
until its correlation id resolves.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
from typing import Any, Dict, List, Optional, Set

from ..engine import (
    DONE,
    FAILED,
    JobValidationError,
    QueueFull,
    Scheduler,
    wire_payload,
)
from ..engine.jobs import job_from_wire
from . import protocol

#: Outbox sentinel: flush everything queued before it, then stop writing.
_CLOSE = object()

_TALLY_KEYS = (
    "connections", "submitted", "completed", "failed",
    "rejected_quota", "rejected_queue_full", "rejected_bad_request",
)


class ClientSession:
    """Loop-thread state for one connection: outbox + quota accounting."""

    __slots__ = ("client_id", "outbox", "outstanding", "closed")

    def __init__(self, client_id: int):
        self.client_id = client_id
        self.outbox: "asyncio.Queue" = asyncio.Queue()
        self.outstanding = 0
        self.closed = False

    def send(self, message: Any) -> None:
        """Queue one response; silently dropped once the client is gone."""
        if not self.closed:
            self.outbox.put_nowait(message)


class JobServer:
    """NDJSON front end over one :class:`repro.engine.Scheduler`."""

    __slots__ = (
        "scheduler", "client_quota", "host", "port", "unix_path", "tally",
        "_servers", "_loop", "_client_tasks", "_ids", "_stopping",
    )

    def __init__(
        self,
        scheduler: Scheduler,
        host: Optional[str] = "127.0.0.1",
        port: Optional[int] = 0,
        unix_path: Optional[str] = None,
        client_quota: int = 16,
    ):
        if port is None and unix_path is None:
            raise ValueError("need a TCP port and/or a unix socket path")
        self.scheduler = scheduler
        self.client_quota = max(1, client_quota)
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.tally: Dict[str, int] = {key: 0 for key in _TALLY_KEYS}
        self._servers: List[Any] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._client_tasks: Set["asyncio.Task"] = set()
        self._ids = itertools.count(1)
        self._stopping: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners; resolves ``port`` 0 to the real port."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        # The +2 leaves room for the newline when enforcing the protocol
        # line limit through the stream reader itself.
        limit = protocol.MAX_LINE_BYTES + 2
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_client, self.host, self.port, limit=limit
            )
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_path, limit=limit
            )
            self._servers.append(server)

    def endpoints(self) -> List[str]:
        addresses = []
        if self.port is not None and self._servers:
            addresses.append(f"{self.host}:{self.port}")
        if self.unix_path is not None:
            addresses.append(f"unix:{self.unix_path}")
        return addresses

    def request_stop(self) -> None:
        """Signal-handler-safe shutdown trigger (must run on the loop)."""
        if self._stopping is not None:
            self._stopping.set()

    async def run(self) -> None:
        """Start, serve until :meth:`request_stop`, then close."""
        if not self._servers:
            await self.start()
        await self._stopping.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting, drop live connections, leave the scheduler up.

        The scheduler belongs to the caller (it may be shared); in-flight
        jobs keep computing into the store, their disconnected clients
        simply never hear back.
        """
        if self._stopping is not None:
            self._stopping.set()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        self._client_tasks.clear()
        if self.unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.unix_path)

    def stats(self) -> dict:
        """Server-level tallies plus the engine's own stats."""
        return {
            "server": {
                "client_quota": self.client_quota,
                "open_connections": len(self._client_tasks),
                "tally": dict(self.tally),
            },
            "engine": self.scheduler.stats(),
            "worker_pids": self.scheduler.worker_pids(),
        }

    # -- connection handling -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        session = ClientSession(next(self._ids))
        self.tally["connections"] += 1
        task = asyncio.current_task()
        self._client_tasks.add(task)
        writer_task = self._loop.create_task(self._drain_outbox(session, writer))
        try:
            await self._read_loop(session, reader)
        except asyncio.CancelledError:
            pass  # server shutdown dropped this connection; flush and close
        finally:
            session.outbox.put_nowait(_CLOSE)
            session.closed = True
            try:
                await writer_task
            finally:
                writer.close()
                with contextlib.suppress(OSError):
                    await writer.wait_closed()
                self._client_tasks.discard(task)

    async def _read_loop(self, session: ClientSession, reader) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Stream limit exceeded: the line can't be framed, and
                # the reader has lost sync — report and hang up.
                session.send(
                    protocol.error_response(
                        protocol.PROTOCOL_ERROR,
                        f"line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    )
                )
                return
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if line.strip() == b"":
                continue
            try:
                message = protocol.decode_line(line)
            except protocol.ProtocolError as error:
                session.send(
                    protocol.error_response(protocol.PROTOCOL_ERROR, str(error))
                )
                continue
            self._dispatch(session, message)

    async def _drain_outbox(self, session: ClientSession, writer) -> None:
        while True:
            message = await session.outbox.get()
            if message is _CLOSE:
                return
            try:
                writer.write(protocol.encode_message(message))
                await writer.drain()
            except (ConnectionError, OSError):
                # Client went away mid-write; stop writing and let the
                # read loop observe EOF. Closing the session turns any
                # still-pending scheduler callbacks into no-ops.
                session.closed = True
                return

    # -- request dispatch (loop thread) --------------------------------------

    def _dispatch(self, session: ClientSession, message: dict) -> None:
        op = message.get("op")
        if op == "submit":
            self._submit(session, message)
        elif op == "ping":
            session.send({"type": "pong"})
        elif op == "stats":
            stats = self.stats()
            stats["type"] = "stats"
            session.send(stats)
        else:
            session.send(
                protocol.error_response(
                    protocol.PROTOCOL_ERROR,
                    f"unknown op {op!r} (expected submit/ping/stats)",
                    message.get("id"),
                )
            )

    def _submit(self, session: ClientSession, message: dict) -> None:
        request_id = message.get("id")
        if self._stopping.is_set():
            session.send(
                protocol.error_response(
                    protocol.SHUTTING_DOWN, "server is shutting down", request_id
                )
            )
            return
        if session.outstanding >= self.client_quota:
            self.tally["rejected_quota"] += 1
            session.send(
                protocol.error_response(
                    protocol.QUOTA_EXCEEDED,
                    f"quota of {self.client_quota} outstanding jobs per "
                    "connection reached; wait for results",
                    request_id,
                )
            )
            return
        try:
            kind = message.get("kind")
            if not isinstance(kind, str):
                raise JobValidationError("missing or non-string 'kind'")
            params = message.get("params", {})
            if not isinstance(params, dict):
                raise JobValidationError("'params' must be a JSON object")
            job = job_from_wire(kind, params)
        except JobValidationError as error:
            self.tally["rejected_bad_request"] += 1
            session.send(
                protocol.error_response(protocol.BAD_REQUEST, str(error), request_id)
            )
            return
        try:
            handle = self.scheduler.submit(job)
        except QueueFull as error:
            self.tally["rejected_queue_full"] += 1
            session.send(
                protocol.error_response(protocol.QUEUE_FULL, str(error), request_id)
            )
            return
        self.tally["submitted"] += 1
        session.outstanding += 1
        session.send(
            protocol.ack_response(
                request_id, handle.job_id, handle.state, handle.waiters > 1
            )
        )
        want_events = bool(message.get("events"))
        loop = self._loop

        def listener(job_handle, state):
            # Fires on an engine worker thread (or inline on the loop
            # thread for an already-terminal deduped handle): hop onto
            # the loop before touching any session state.
            with contextlib.suppress(RuntimeError):  # loop already closed
                loop.call_soon_threadsafe(
                    self._on_job_transition,
                    session,
                    request_id,
                    job_handle,
                    state,
                    want_events,
                )

        handle.subscribe(listener)

    def _on_job_transition(
        self,
        session: ClientSession,
        request_id: Any,
        handle,
        state: str,
        want_events: bool,
    ) -> None:
        if state == DONE:
            session.outstanding -= 1
            self.tally["completed"] += 1
            try:
                # This runs on the event loop; result() would park the
                # whole loop on an Event.wait. The handle is guaranteed
                # terminal before any listener fires, so the non-blocking
                # accessor never raises here.
                payload = wire_payload(handle.job, handle.result_nowait())
            except Exception as error:
                # A wire-summary bug must degrade to a structured error,
                # never a client waiting forever on a vanished result.
                session.send(
                    protocol.error_response(
                        protocol.JOB_FAILED,
                        f"result serialization failed: {error}",
                        request_id,
                        handle.job_id,
                    )
                )
                return
            session.send(
                protocol.result_response(
                    request_id, handle.job_id, handle.source, payload
                )
            )
        elif state == FAILED:
            session.outstanding -= 1
            self.tally["failed"] += 1
            session.send(
                protocol.error_response(
                    protocol.JOB_FAILED,
                    handle.error or "job failed",
                    request_id,
                    handle.job_id,
                )
            )
        elif want_events:
            session.send(
                protocol.event_response(request_id, handle.job_id, state)
            )
