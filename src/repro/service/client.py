"""Clients for the job-queue service.

:class:`ServiceClient` is the blocking, stdlib-socket client — what a
script, a test or the example program uses to drive a server one request
at a time (interleaved submissions on one connection work too: responses
carry the caller's correlation ids).

:func:`storm` is the load-generation client behind the benchmark and the
CI smoke test: N logical clients, each its own connection submitting its
own job list, multiplexed on one asyncio loop with a concurrency bound
so a thousand-client storm doesn't need a thousand simultaneous sockets.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import protocol


class ServiceError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServiceClient:
    """Blocking NDJSON client for one connection to the job server."""

    __slots__ = ("_sock", "_reader", "_ids")

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: Optional[float] = 600.0,
    ):
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port), timeout=timeout
            )
        self._reader = self._sock.makefile("rb")
        self._ids = 0

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request primitives --------------------------------------------------

    def send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode_message(message))

    def read_response(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_line(line)

    # -- operations ----------------------------------------------------------

    def ping(self) -> bool:
        self.send({"op": "ping"})
        return self.read_response().get("type") == "pong"

    def stats(self) -> Dict[str, Any]:
        self.send({"op": "stats"})
        response = self.read_response()
        if response.get("type") != "stats":
            raise ServiceError(
                response.get("code", "protocol-error"),
                str(response.get("message", response)),
            )
        return response

    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        events: bool = False,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit one job and block until its terminal response.

        Returns the ``result`` message (``payload``/``source``/
        ``job_id``); raises :class:`ServiceError` on any rejection or
        job failure, with the server's error code on ``.code``.
        """
        self._ids += 1
        request_id = self._ids
        request: Dict[str, Any] = {"op": "submit", "id": request_id, "kind": kind}
        if params:
            request["params"] = params
        if events:
            request["events"] = True
        self.send(request)
        while True:
            response = self.read_response()
            if response.get("id") != request_id:
                continue  # response to an earlier interleaved request
            response_type = response.get("type")
            if response_type == "result":
                return response
            if response_type == "error":
                raise ServiceError(
                    response.get("code", "job-failed"),
                    str(response.get("message", "job failed")),
                )
            if response_type == "event" and on_event is not None:
                on_event(response)
            # "ack" and unwatched events fall through to the next line.


# ---------------------------------------------------------------------------
# Storm load generation (benchmark + smoke test)
# ---------------------------------------------------------------------------


async def _storm_client(
    semaphore: "asyncio.Semaphore",
    host: str,
    port: int,
    submissions: Sequence[Tuple[str, Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """One logical client: connect, submit all, await all, disconnect."""
    async with semaphore:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for index, (kind, params) in enumerate(submissions):
                request: Dict[str, Any] = {"op": "submit", "id": index, "kind": kind}
                if params:
                    request["params"] = params
                writer.write(protocol.encode_message(request))
            await writer.drain()
            terminal: Dict[int, Dict[str, Any]] = {}
            while len(terminal) < len(submissions):
                line = await reader.readline()
                if not line:
                    raise ConnectionError("server closed mid-storm")
                response = protocol.decode_line(line)
                if response.get("type") in ("result", "error"):
                    terminal[response.get("id")] = response
            return [terminal[index] for index in range(len(submissions))]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def storm_async(
    host: str,
    port: int,
    clients: Sequence[Sequence[Tuple[str, Dict[str, Any]]]],
    concurrency: int = 128,
) -> List[List[Dict[str, Any]]]:
    """Run every client's submission list; returns per-client responses.

    ``concurrency`` bounds simultaneous connections (file descriptors),
    not total clients — a 1000-client storm holds at most that many
    sockets open at once while still making 1000 distinct connections.
    """
    semaphore = asyncio.Semaphore(concurrency)
    return list(
        await asyncio.gather(
            *(
                _storm_client(semaphore, host, port, submissions)
                for submissions in clients
            )
        )
    )


def storm(
    host: str,
    port: int,
    clients: Sequence[Sequence[Tuple[str, Dict[str, Any]]]],
    concurrency: int = 128,
) -> List[List[Dict[str, Any]]]:
    """Blocking wrapper around :func:`storm_async` (own event loop)."""
    return asyncio.run(storm_async(host, port, clients, concurrency=concurrency))
