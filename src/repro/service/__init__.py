"""``repro.service`` — Mocktails-as-a-service.

A stdlib-only asyncio job-queue server (and its clients) over the shared
job engine: clients submit ``profile`` / ``synthesize`` / ``evaluate`` /
``sample`` jobs as newline-delimited JSON on a TCP or unix socket, the
:class:`JobServer` admits them through per-client quotas and the
engine's bounded queue, the :class:`repro.engine.Scheduler` single-
flights duplicates onto one computation, and terminal responses stream
back per correlation id. Start one with::

    python -m repro.eval serve --port 8642 --jobs 4

and drive it with :class:`ServiceClient` (see
``examples/service_client.py``) or any ``nc``-grade tool::

    {"op": "submit", "id": 1, "kind": "profile", "params": {"name": "trex1"}}

Protocol details live in :mod:`repro.service.protocol`; the full wire
and lifecycle contract is documented in DESIGN.md ("Service & engine").
"""

from .client import ServiceClient, ServiceError, storm, storm_async
from .protocol import (
    BAD_REQUEST,
    ERROR_CODES,
    JOB_FAILED,
    MAX_LINE_BYTES,
    PROTOCOL_ERROR,
    QUEUE_FULL,
    QUOTA_EXCEEDED,
    SHUTTING_DOWN,
    ProtocolError,
    decode_line,
    encode_message,
)
from .server import ClientSession, JobServer

__all__ = [
    "BAD_REQUEST",
    "ClientSession",
    "ERROR_CODES",
    "JOB_FAILED",
    "JobServer",
    "MAX_LINE_BYTES",
    "PROTOCOL_ERROR",
    "ProtocolError",
    "QUEUE_FULL",
    "QUOTA_EXCEEDED",
    "SHUTTING_DOWN",
    "ServiceClient",
    "ServiceError",
    "decode_line",
    "encode_message",
    "storm",
    "storm_async",
]
