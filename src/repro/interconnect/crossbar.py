"""A simple crossbar between a traffic source and the memory system.

The paper's validation platform connects the traffic generator to main
memory through a crossbar (Sec. IV-A). This model adds a fixed traversal
latency and serializes requests at one injection per ``min_gap`` cycles,
so closely-spaced bursts experience queueing in the network as well as
at the controller. The crossbar reports the total delay a request
experienced (network serialization + memory backpressure) so coupled
synthesis can apply feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..core.request import MemoryRequest
from ..dram.memory_system import MemorySystem


@dataclass(frozen=True)
class CrossbarConfig:
    latency: int = 8  # cycles to traverse the crossbar
    min_gap: int = 1  # minimum cycles between consecutive injections

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.min_gap <= 0:
            raise ValueError("min_gap must be positive")


class Crossbar:
    """Forwards requests from one device port into the memory system."""

    __slots__ = ("memory", "config", "_last_forward_time", "total_delay", "_obs")

    def __init__(self, memory: MemorySystem, config: Optional[CrossbarConfig] = None):
        self.memory = memory
        self.config = config if config is not None else CrossbarConfig()
        self._last_forward_time: Optional[int] = None
        self.total_delay = 0
        self._obs = obs.active()

    def send(self, request: MemoryRequest) -> int:
        """Forward a request; returns the delay beyond pure traversal.

        The returned value is the backpressure the device observed:
        serialization stalls at the crossbar plus queue-full stalls at
        the memory controller. Zero means the request was accepted
        ``latency`` cycles after injection, as fast as possible.
        """
        forward_time = request.timestamp + self.config.latency
        if self._last_forward_time is not None:
            # The port is in-order: a request cannot be forwarded before
            # the previous one was *accepted* (backpressure propagates).
            forward_time = max(forward_time, self._last_forward_time + self.config.min_gap)
        accept_time = self.memory.submit(
            request, at_time=forward_time, injected_at=request.timestamp
        )
        self._last_forward_time = accept_time

        delay = accept_time - (request.timestamp + self.config.latency)
        self.total_delay += delay
        registry = self._obs
        if registry is not None:
            registry.counter("crossbar.forwarded").inc()
            registry.histogram("crossbar.delay_cycles").observe(delay)
            if delay > 0:
                registry.counter("crossbar.stalls").inc()
                registry.counter("crossbar.stall_cycles").inc(delay)
        return delay

    def send_many(self, requests) -> int:
        """Forward a batch of time-ordered requests; returns summed delay.

        The batch port of the scalar path: accepts any iterable of
        :class:`MemoryRequest` (including ``ColumnarTrace.iter_requests()``
        output) and forwards each in order. The vectorized batch engine
        (:class:`repro.dram.batched.BatchedReplay`) owns its crossbar
        directly and bypasses this loop; ``send_many`` is what block
        consumers call when that engine cannot engage.
        """
        send = self.send
        total = 0
        for request in requests:
            total += send(request)
        return total
