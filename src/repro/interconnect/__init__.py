"""Interconnect models: the crossbar between device and memory."""

from .crossbar import Crossbar, CrossbarConfig

__all__ = ["Crossbar", "CrossbarConfig"]
