"""A 2D-mesh network-on-chip model.

The paper notes that bursts "may need to go to different memory
controllers, putting strain on the interconnection network" (Sec. III-C,
citing SynFull). The crossbar model captures serialization at one port;
this mesh model adds the topology dimension: devices and memory
controllers sit at mesh nodes, requests are routed XY, and each link is
a resource with bandwidth (one flit per cycle) and pipeline latency.

The model is contention-aware but flit-approximate: a request occupies
each link on its path for ``ceil(size / flit_bytes)`` cycles, links are
reserved in path order, and the arrival time at the destination reflects
both hop latency and queueing at busy links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.request import MemoryRequest

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class MeshConfig:
    width: int = 4
    height: int = 4
    hop_latency: int = 2  # cycles per router+link traversal
    flit_bytes: int = 16  # link width

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.hop_latency <= 0:
            raise ValueError("hop_latency must be positive")
        if self.flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")

    def contains(self, node: Coordinate) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height


@dataclass
class MeshStats:
    packets: int = 0
    total_hops: int = 0
    total_flits: int = 0
    total_latency: int = 0
    link_busy_cycles: Dict[tuple, int] = field(default_factory=dict)

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.packets if self.packets else 0.0

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.packets if self.packets else 0.0

    def hottest_links(self, count: int = 5) -> List[tuple]:
        """The ``count`` busiest links as (link, busy_cycles)."""
        ordered = sorted(
            self.link_busy_cycles.items(), key=lambda item: item[1], reverse=True
        )
        return ordered[:count]


class MeshNetwork:
    """XY-routed 2D mesh with per-link next-free-time contention."""

    def __init__(self, config: Optional[MeshConfig] = None):
        self.config = config if config is not None else MeshConfig()
        self.stats = MeshStats()
        self._link_free_at: Dict[tuple, int] = {}

    @staticmethod
    def xy_route(source: Coordinate, destination: Coordinate) -> List[tuple]:
        """The ordered list of links of the XY route (X first, then Y)."""
        links = []
        x, y = source
        dx, dy = destination
        while x != dx:
            step = 1 if dx > x else -1
            links.append(((x, y), (x + step, y)))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            links.append(((x, y), (x, y + step)))
            y += step
        return links

    def flits_for(self, request: MemoryRequest) -> int:
        return max(1, math.ceil(request.size / self.config.flit_bytes))

    def send(
        self,
        request: MemoryRequest,
        source: Coordinate,
        destination: Coordinate,
    ) -> int:
        """Route a request; returns its arrival time at the destination.

        Each link on the path is reserved for the packet's flit count;
        the head flit advances one hop per ``hop_latency`` cycles once
        the link is free.
        """
        if not self.config.contains(source):
            raise ValueError(f"source {source} outside mesh")
        if not self.config.contains(destination):
            raise ValueError(f"destination {destination} outside mesh")

        links = self.xy_route(source, destination)
        flits = self.flits_for(request)
        head_time = request.timestamp
        for link in links:
            free_at = self._link_free_at.get(link, 0)
            start = max(head_time, free_at)
            self._link_free_at[link] = start + flits
            self.stats.link_busy_cycles[link] = (
                self.stats.link_busy_cycles.get(link, 0) + flits
            )
            head_time = start + self.config.hop_latency

        arrival = head_time + max(0, flits - 1)
        self.stats.packets += 1
        self.stats.total_hops += len(links)
        self.stats.total_flits += flits * max(len(links), 1)
        self.stats.total_latency += arrival - request.timestamp
        return arrival


def controller_placement(config: MeshConfig, num_controllers: int) -> List[Coordinate]:
    """Spread memory controllers along the mesh edges (common practice)."""
    if num_controllers <= 0:
        raise ValueError("num_controllers must be positive")
    edge_nodes: List[Coordinate] = []
    for x in range(config.width):
        edge_nodes.append((x, 0))
    for x in range(config.width):
        edge_nodes.append((x, config.height - 1))
    placements = []
    step = max(1, len(edge_nodes) // num_controllers)
    for index in range(num_controllers):
        placements.append(edge_nodes[(index * step) % len(edge_nodes)])
    return placements
