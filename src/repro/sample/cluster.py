"""Deterministic, seeded k-means over interval fingerprints.

SimPoint-style interval selection needs a clusterer whose output is a
pure function of ``(vectors, k, seed)`` — bit-reproducible across runs,
processes and backends. Three choices make that hold:

* **seeded k-means++ init** from ``random.Random(seed)`` — no global
  RNG, no hash ordering;
* **assignment** by squared Euclidean distance accumulated dimension by
  dimension in index order. The numpy fast path accumulates with the
  same per-element operation order (``acc += diff*diff`` per dimension),
  so it produces the same bits as the scalar loop; ties go to the
  lowest-index centroid in both;
* **centroid update** via :func:`math.fsum` per (cluster, dimension).
  ``fsum`` is exactly rounded, so the mean is independent of summation
  order — the one float reduction where scalar/vectorized order could
  otherwise diverge.

Empty clusters are re-seeded deterministically to the point farthest
from its current centroid (ties to the lowest index).

Inputs are expected normalized (see :func:`normalize`) so every feature
contributes on the same scale.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from ..core.columnar import numpy_or_none

__all__ = ["KMeansResult", "kmeans", "normalize", "squared_distance"]

Vector = Tuple[float, ...]


class KMeansResult:
    """Assignments, centroids and inertia of one converged k-means run."""

    __slots__ = ("assignments", "centroids", "inertia", "iterations")

    def __init__(
        self,
        assignments: List[int],
        centroids: List[Vector],
        inertia: float,
        iterations: int,
    ):
        self.assignments = assignments
        self.centroids = centroids
        self.inertia = inertia
        self.iterations = iterations


def normalize(vectors: Sequence[Sequence[float]]) -> List[Vector]:
    """Min-max scale each dimension to [0, 1] (constant dimensions to 0)."""
    if not vectors:
        return []
    dimensions = len(vectors[0])
    lows = [min(vector[d] for vector in vectors) for d in range(dimensions)]
    highs = [max(vector[d] for vector in vectors) for d in range(dimensions)]
    spans = [high - low for low, high in zip(lows, highs)]
    return [
        tuple(
            (vector[d] - lows[d]) / spans[d] if spans[d] > 0.0 else 0.0
            for d in range(dimensions)
        )
        for vector in vectors
    ]


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance, accumulated in dimension order."""
    acc = 0.0
    for x, y in zip(a, b):
        diff = x - y
        acc += diff * diff
    return acc


def _assign_scalar(vectors: Sequence[Vector], centroids: Sequence[Vector]) -> List[int]:
    assignments = []
    for vector in vectors:
        best_index, best_distance = 0, squared_distance(vector, centroids[0])
        for index in range(1, len(centroids)):
            distance = squared_distance(vector, centroids[index])
            if distance < best_distance:
                best_index, best_distance = index, distance
        assignments.append(best_index)
    return assignments


def _assign(vectors: Sequence[Vector], centroids: Sequence[Vector]) -> List[int]:
    """Nearest-centroid assignment (ties to the lowest centroid index).

    The numpy path computes, per centroid, ``acc += diff*diff`` one
    dimension at a time — element-wise the identical float operation
    sequence as :func:`squared_distance` — and ``argmin`` returns the
    first minimal index, so both paths yield the same assignments for
    the same bits.
    """
    np = numpy_or_none()
    if np is None or len(vectors) < 2:
        return _assign_scalar(vectors, centroids)
    columns = [np.array([v[d] for v in vectors]) for d in range(len(vectors[0]))]
    distances = np.empty((len(centroids), len(vectors)))
    for index, centroid in enumerate(centroids):
        acc = np.zeros(len(vectors))
        for d, column in enumerate(columns):
            diff = column - centroid[d]
            acc += diff * diff
        distances[index] = acc
    return [int(a) for a in np.argmin(distances, axis=0).tolist()]


def _update(
    vectors: Sequence[Vector], assignments: Sequence[int], k: int
) -> List[Vector]:
    """Per-cluster mean via fsum (exactly rounded, order-independent)."""
    dimensions = len(vectors[0])
    members: List[List[int]] = [[] for _ in range(k)]
    for index, cluster in enumerate(assignments):
        members[cluster].append(index)
    centroids = []
    for cluster in range(k):
        rows = members[cluster]
        centroids.append(
            tuple(
                math.fsum(vectors[row][d] for row in rows) / len(rows)
                for d in range(dimensions)
            )
        )
    return centroids


def _reseed_empty(
    vectors: Sequence[Vector],
    centroids: Sequence[Vector],
    assignments: List[int],
    k: int,
) -> None:
    """Move the farthest-from-centroid point into each empty cluster."""
    for cluster in range(k):
        if cluster in assignments:
            continue
        farthest_index, farthest_distance = -1, -1.0
        for index, vector in enumerate(vectors):
            if assignments.count(assignments[index]) <= 1:
                continue  # do not empty another singleton cluster
            distance = squared_distance(vector, centroids[assignments[index]])
            if distance > farthest_distance:
                farthest_index, farthest_distance = index, distance
        if farthest_index >= 0:
            assignments[farthest_index] = cluster


def _init_plus_plus(
    vectors: Sequence[Vector], k: int, rng: random.Random
) -> List[Vector]:
    """Seeded k-means++ initialization (deterministic for a fixed seed)."""
    centroids = [vectors[rng.randrange(len(vectors))]]
    while len(centroids) < k:
        distances = [
            min(squared_distance(vector, centroid) for centroid in centroids)
            for vector in vectors
        ]
        total = math.fsum(distances)
        if total <= 0.0:
            # Every point coincides with a centroid: any pick is as good.
            pick = len(centroids) % len(vectors)
        else:
            target = rng.random() * total
            cumulative = 0.0
            pick = len(vectors) - 1
            for index, distance in enumerate(distances):
                cumulative += distance
                if cumulative >= target:
                    pick = index
                    break
        centroids.append(vectors[pick])
    return centroids


def kmeans(
    vectors: Sequence[Sequence[float]],
    k: int,
    seed: int = 0,
    max_iterations: int = 64,
) -> KMeansResult:
    """Cluster ``vectors`` into ``k`` groups, bit-reproducibly.

    ``k`` is clamped to the number of vectors. The run converges when an
    iteration leaves the assignments unchanged (guaranteed within
    ``max_iterations`` for these scales; the loop is bounded anyway).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not vectors:
        return KMeansResult([], [], 0.0, 0)
    vectors = [tuple(vector) for vector in vectors]
    k = min(k, len(vectors))
    rng = random.Random(seed)
    centroids = _init_plus_plus(vectors, k, rng)

    assignments: List[int] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_assignments = _assign(vectors, centroids)
        _reseed_empty(vectors, centroids, new_assignments, k)
        if new_assignments == assignments:
            break
        assignments = new_assignments
        centroids = _update(vectors, assignments, k)

    inertia = math.fsum(
        squared_distance(vector, centroids[cluster])
        for vector, cluster in zip(vectors, assignments)
    )
    return KMeansResult(assignments, centroids, inertia, iterations)
