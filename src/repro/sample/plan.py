"""Sampling plans: which intervals to simulate, with what weights.

:func:`build_plan` turns a list of interval fingerprints into a
:class:`SamplePlan`: K clusters (deterministic seeded k-means over the
normalized fingerprint vectors), one representative interval per
cluster (the member closest to the centroid, ties to the lowest
interval index), and an **occupancy weight** per representative —
``cluster_requests / representative_requests`` — so that weighting a
representative's metrics reproduces its whole cluster's share of the
trace.

Exactness contract: with ``k >= interval_count`` the plan is *exact* —
every interval is its own representative with weight 1.0 and the
estimator short-circuits to the full pipeline, byte-identical output
included (per-interval simulation cannot reproduce a monolithic
simulation bit for bit, because simulator state crosses interval
boundaries; running the full pipeline is the only honest "exact" mode).

Error bound: the plan carries ``error_bound_percent``, an empirical
accuracy contract derived from the within-cluster fingerprint
dispersion (RMS distance to the centroid in the normalized feature
space). The constants are calibrated on the repo's reference
micro-benches (every ``repro.workloads`` generator; see
``tests/sample/test_fidelity.py`` and the ``sampling-fidelity`` CI job,
which assert the measured Fig. 6/13/14 geomean error stays inside the
bound). The floor term absorbs the irreducible boundary effect of
replaying intervals in isolation; the dispersion term scales with how
heterogeneous the clustered intervals actually are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .. import obs
from .cluster import kmeans, normalize, squared_distance
from .fingerprint import FEATURE_NAMES, IntervalFingerprint

__all__ = [
    "ERROR_BOUND_FLOOR_PERCENT",
    "ERROR_BOUND_SCALE",
    "SamplePlan",
    "build_plan",
    "default_sample_k",
]

#: Bound = floor + scale * RMS within-cluster dispersion. Calibrated on
#: the reference micro-benches (every Table II generator plus SPEC
#: models, 2k-20k requests, both 2L-TS and 2L-RS hierarchies, K from 1
#: up to the interval count, multiple generator/clustering seeds): the
#: worst observed Fig. 6/13/14 geomean error was 14.2% at dispersion
#: 0.52 and 13.7% at dispersion 0.29, giving these constants just under
#: a 4x margin over every measured case. The floor covers the
#: interval-boundary replay effect; the dispersion term scales with how
#: heterogeneous the clustered intervals actually are.
ERROR_BOUND_FLOOR_PERCENT = 15.0
ERROR_BOUND_SCALE = 75.0


@dataclass(frozen=True)
class SamplePlan:
    """The output of interval clustering: what to simulate, how to weigh it."""

    interval_count: int
    k: int
    seed: int
    exact: bool
    representatives: Tuple[int, ...]
    weights: Tuple[float, ...]
    cluster_sizes: Tuple[int, ...]
    cluster_requests: Tuple[int, ...]
    assignments: Tuple[int, ...]
    dispersion: float
    error_bound_percent: float
    feature_names: Tuple[str, ...] = ()

    @property
    def total_requests(self) -> int:
        """Requests across every interval (what the weights reconstruct)."""
        return sum(self.cluster_requests)


def default_sample_k(interval_count: int) -> int:
    """The K ≈ 10% default used when no ``--sample-intervals`` is given."""
    return max(1, (interval_count + 9) // 10)


def error_bound_percent(dispersion: float) -> float:
    """The accuracy contract for a non-exact plan, in percent."""
    return ERROR_BOUND_FLOOR_PERCENT + ERROR_BOUND_SCALE * dispersion


def _count_intervals(registry, seen: int, selected: int) -> None:
    if registry is not None:
        registry.counter("sample.intervals.seen").inc(seen)
        registry.counter("sample.intervals.selected").inc(selected)


def build_plan(
    fingerprints: Sequence[IntervalFingerprint], k: int, seed: int = 0
) -> SamplePlan:
    """Cluster fingerprints and pick weighted representatives.

    Deterministic: a pure function of the fingerprints, ``k`` and
    ``seed``. Emits ``sample.intervals.seen`` / ``.selected`` counters
    when a :mod:`repro.obs` registry is active.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    interval_count = len(fingerprints)
    registry = obs.active()
    if not interval_count:
        _count_intervals(registry, 0, 0)
        return SamplePlan(
            interval_count=0,
            k=0,
            seed=seed,
            exact=True,
            representatives=(),
            weights=(),
            cluster_sizes=(),
            cluster_requests=(),
            assignments=(),
            dispersion=0.0,
            error_bound_percent=0.0,
            feature_names=FEATURE_NAMES,
        )

    if k >= interval_count:
        # Exact mode: every interval kept, the estimator runs the full
        # pipeline and the "prediction" is byte-identical to it.
        _count_intervals(registry, interval_count, interval_count)
        return SamplePlan(
            interval_count=interval_count,
            k=interval_count,
            seed=seed,
            exact=True,
            representatives=tuple(range(interval_count)),
            weights=(1.0,) * interval_count,
            cluster_sizes=(1,) * interval_count,
            cluster_requests=tuple(fp.requests for fp in fingerprints),
            assignments=tuple(range(interval_count)),
            dispersion=0.0,
            error_bound_percent=0.0,
            feature_names=FEATURE_NAMES,
        )

    vectors = normalize([fp.vector for fp in fingerprints])
    result = kmeans(vectors, k, seed=seed)

    members: List[List[int]] = [[] for _ in range(k)]
    for index, cluster in enumerate(result.assignments):
        members[cluster].append(index)

    chosen: List[Tuple[int, float, int, int]] = []
    for cluster in range(k):
        rows = members[cluster]
        if not rows:  # pragma: no cover - kmeans reseeds empty clusters
            continue
        representative = rows[0]
        best = squared_distance(vectors[representative], result.centroids[cluster])
        for row in rows[1:]:
            distance = squared_distance(vectors[row], result.centroids[cluster])
            if distance < best:
                representative, best = row, distance
        cluster_requests = sum(fingerprints[row].requests for row in rows)
        weight = cluster_requests / fingerprints[representative].requests
        chosen.append((representative, weight, len(rows), cluster_requests))
    chosen.sort()  # simulate representatives in interval order

    dispersion = math.sqrt(result.inertia / interval_count)
    _count_intervals(registry, interval_count, len(chosen))
    return SamplePlan(
        interval_count=interval_count,
        k=len(chosen),
        seed=seed,
        exact=False,
        representatives=tuple(entry[0] for entry in chosen),
        weights=tuple(entry[1] for entry in chosen),
        cluster_sizes=tuple(entry[2] for entry in chosen),
        cluster_requests=tuple(entry[3] for entry in chosen),
        assignments=tuple(result.assignments),
        dispersion=dispersion,
        error_bound_percent=error_bound_percent(dispersion),
        feature_names=FEATURE_NAMES,
    )
