"""Weighted estimation through the profile → synthesis → replay harness.

Two entry points:

* :func:`build_sampled_profile` — profile only the representative
  intervals of a :class:`~repro.sample.plan.SamplePlan`. Because the
  sampling units *are* the profiler's outer temporal partitions, each
  representative's leaf models (fit via
  :func:`repro.core.profiler.fit_interval_leaves`) are bit-identical to
  the corresponding leaves of the full profile — sampling only skips
  the fitting work for unselected intervals. With ``k >= interval
  count`` the full single-pass build runs instead, so the output is
  byte-identical to the unsampled pipeline.

* :func:`sampling_comparison` — the fidelity report: run the full
  pipeline and the weighted sampled estimate side by side and report
  predicted-vs-full percent error on the paper's Fig. 6 (DRAM
  read/write bursts), Fig. 13 (average access latency) and Fig. 14
  (L1/L2 miss rate) metrics, plus whether the geomean error honours the
  plan's declared ``error_bound_percent``.

The weighted estimate synthesizes and replays each representative
interval's profile in isolation and recombines per-cluster occupancy
weights ``w_c`` on *sufficient statistics*, not on ratios: counts sum
as ``Σ w_c · count_c``; the latency mean is ``Σ w_c · latency_sum_c /
Σ w_c · latency_count_c``; miss rates are ``Σ w_c · misses_c / Σ w_c ·
accesses_c``.

:func:`sampled_profile_from_file` is the out-of-core twin: two passes
over a trace file via :func:`repro.stream.iter_blocks` (fingerprint,
then fit only the representatives), peak memory O(interval).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..cache.cache import CacheConfig
from ..core.columnar import ColumnarTrace, as_columnar
from ..core.hierarchy import HierarchyConfig, TemporalLayer, two_level_ts
from ..core.profile import Profile
from ..core.profiler import build_profile, fit_interval_leaves
from ..core.synthesis import synthesize
from ..core.trace import Trace
from ..eval.metrics import geometric_mean, percent_error
from ..sim.cache_driver import run_cache_trace
from ..sim.driver import simulate_trace
from .fingerprint import (
    fingerprint_intervals,
    fingerprint_trace,
    iter_stream_intervals,
)
from .plan import SamplePlan, build_plan, default_sample_k

__all__ = [
    "METRIC_NAMES",
    "SamplingReport",
    "build_sampled_profile",
    "sampled_profile_from_file",
    "sampling_comparison",
]

#: The Fig. 6 / Fig. 13 / Fig. 14 metrics the estimator predicts.
METRIC_NAMES: Tuple[str, ...] = (
    "read_bursts",
    "write_bursts",
    "avg_access_latency",
    "l1_miss_rate",
    "l2_miss_rate",
)


@dataclass
class SamplingReport:
    """Predicted-vs-full fidelity of one sampled estimate."""

    name: str
    num_requests: int
    plan: SamplePlan
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def geomean_error_percent(self) -> float:
        """Geomean of the per-metric percent errors (0.01 floor)."""
        return geometric_mean(
            [max(self.metrics[name]["error_percent"], 0.01) for name in METRIC_NAMES],
            floor=0.01,
        )

    @property
    def error_bound_percent(self) -> float:
        return self.plan.error_bound_percent

    @property
    def within_bound(self) -> bool:
        """Does the measured error honour the declared contract?

        Exact plans have bound 0.0 and, by construction, error floored
        at 0.01% — treat them as within bound.
        """
        if self.plan.exact:
            return True
        return self.geomean_error_percent <= self.plan.error_bound_percent

    def to_dict(self) -> dict:
        """Plain-data rendering (for JSON output and memoized payloads)."""
        return {
            "name": self.name,
            "num_requests": self.num_requests,
            "interval_count": self.plan.interval_count,
            "k": self.plan.k,
            "seed": self.plan.seed,
            "exact": self.plan.exact,
            "representatives": list(self.plan.representatives),
            "weights": list(self.plan.weights),
            "dispersion": self.plan.dispersion,
            "error_bound_percent": self.plan.error_bound_percent,
            "metrics": {name: dict(self.metrics[name]) for name in METRIC_NAMES},
            "geomean_error_percent": self.geomean_error_percent,
            "within_bound": self.within_bound,
        }


def _outer_temporal_layer(config: HierarchyConfig) -> Optional[TemporalLayer]:
    layer = config.layers[0]
    return layer if isinstance(layer, TemporalLayer) else None


def _plan_for(
    columns: ColumnarTrace,
    layer: Optional[TemporalLayer],
    k: Optional[int],
) -> Tuple[List[ColumnarTrace], List]:
    """(interval slices, fingerprints) for a trace under one outer layer."""
    if layer is None:
        slices = [columns] if len(columns) else []
        return slices, fingerprint_intervals(slices)
    return fingerprint_trace(columns, layer)


def _resolve_k(k: Optional[int], interval_count: int) -> int:
    return default_sample_k(interval_count) if k is None else k


def build_sampled_profile(
    trace: Union[Trace, ColumnarTrace],
    config: Optional[HierarchyConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    name: str = "",
    backend: Optional[str] = None,
) -> Tuple[Profile, SamplePlan]:
    """Profile only K representative intervals of ``trace``.

    ``k=None`` selects the ~10% default. Returns the sampled profile
    (leaf models bit-identical to the full profile's for the selected
    intervals) and the plan that produced it. With ``k >= interval
    count`` the result *is* the full profile, byte-identical.
    """
    config = config if config is not None else two_level_ts()
    columns = as_columnar(trace)
    layer = _outer_temporal_layer(config)
    slices, fingerprints = _plan_for(columns, layer, k)
    plan = build_plan(fingerprints, _resolve_k(k, len(fingerprints)) or 1, seed=seed)
    if plan.exact:
        return build_profile(columns, config, name=name, backend=backend), plan
    leaves = fit_interval_leaves(
        [slices[index] for index in plan.representatives],
        config.layers[1:],
        backend=backend,
    )
    return Profile(leaves, hierarchy=config.describe(), name=name), plan


def sampled_profile_from_file(
    path,
    config: Optional[HierarchyConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    name: str = "",
    block_requests: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Profile, SamplePlan]:
    """Out-of-core :func:`build_sampled_profile` over a trace file.

    Pass 1 fingerprints intervals block by block
    (:func:`repro.stream.iter_blocks` + per-block segmentation); pass 2
    re-reads the file and fits only the representative intervals. Peak
    memory is O(interval) — the file is never loaded whole.
    """
    from ..stream import DEFAULT_BLOCK_REQUESTS, iter_blocks

    config = config if config is not None else two_level_ts()
    blocks = block_requests if block_requests is not None else DEFAULT_BLOCK_REQUESTS
    layer = _outer_temporal_layer(config)
    if layer is None:
        # No outer temporal layer: the whole trace is one interval and
        # any K is exact — fall through to the streaming full build.
        from ..stream import build_profile_streaming

        fingerprints = fingerprint_intervals(
            interval
            for _, interval in iter_stream_intervals(
                iter_blocks(path, blocks), TemporalLayer("request_count", 1 << 62)
            )
        )
        plan = build_plan(fingerprints, _resolve_k(k, len(fingerprints)) or 1, seed=seed)
        profile = build_profile_streaming(
            iter_blocks(path, blocks), config, name=name, backend=backend
        )
        return profile, plan

    fingerprints = fingerprint_intervals(
        interval
        for _, interval in iter_stream_intervals(iter_blocks(path, blocks), layer)
    )
    plan = build_plan(fingerprints, _resolve_k(k, len(fingerprints)) or 1, seed=seed)
    if plan.exact:
        from ..stream import build_profile_streaming

        profile = build_profile_streaming(
            iter_blocks(path, blocks), config, name=name, backend=backend
        )
        return profile, plan

    wanted = set(plan.representatives)
    leaves = []
    for index, interval in iter_stream_intervals(iter_blocks(path, blocks), layer):
        if index in wanted:
            leaves.extend(
                fit_interval_leaves([interval], config.layers[1:], backend=backend)
            )
    return Profile(leaves, hierarchy=config.describe(), name=name), plan


def _replay_metrics(
    synthetic, l1_config: Optional[CacheConfig]
) -> Tuple[object, object]:
    """(DRAM stats, cache stats) of one synthetic trace replay."""
    dram = simulate_trace(synthetic)
    cache = run_cache_trace(synthetic, l1_config)
    return dram, cache


def sampling_comparison(
    trace: Union[Trace, ColumnarTrace],
    config: Optional[HierarchyConfig] = None,
    k: Optional[int] = None,
    seed: int = 0,
    synthesis_seed: int = 1,
    name: str = "",
    l1_config: Optional[CacheConfig] = None,
) -> SamplingReport:
    """Predicted-vs-full error report for one trace.

    Runs the full profile→synthesis→replay pipeline, then the weighted
    K-representative estimate, and reports percent error per Fig.
    6/13/14 metric. Deterministic: a pure function of its arguments.
    """
    config = config if config is not None else two_level_ts()
    columns = as_columnar(trace)
    layer = _outer_temporal_layer(config)
    slices, fingerprints = _plan_for(columns, layer, k)
    plan = build_plan(fingerprints, _resolve_k(k, len(fingerprints)) or 1, seed=seed)

    full_profile = build_profile(columns, config, name=name)
    full_synthetic = synthesize(full_profile, seed=synthesis_seed)
    full_dram, full_cache = _replay_metrics(full_synthetic, l1_config)
    full_values = {
        "read_bursts": float(full_dram.read_bursts),
        "write_bursts": float(full_dram.write_bursts),
        "avg_access_latency": full_dram.avg_access_latency,
        "l1_miss_rate": full_cache.l1_miss_rate,
        "l2_miss_rate": full_cache.l2_miss_rate,
    }

    if plan.exact:
        # Byte-identical contract: the sampled profile is the full
        # profile, so synthesis and replay reproduce the full pipeline
        # exactly — the prediction *is* the full measurement.
        predicted_values = dict(full_values)
    else:
        read_bursts = write_bursts = 0.0
        latency_sum = latency_count = 0.0
        l1_misses = l1_accesses = 0.0
        l2_misses = l2_accesses = 0.0
        for index, weight in zip(plan.representatives, plan.weights):
            leaves = fit_interval_leaves([slices[index]], config.layers[1:])
            profile = Profile(leaves, hierarchy=config.describe(), name=name)
            synthetic = synthesize(profile, seed=synthesis_seed)
            dram, cache = _replay_metrics(synthetic, l1_config)
            read_bursts += weight * dram.read_bursts
            write_bursts += weight * dram.write_bursts
            latency_sum += weight * dram.latency_sum
            latency_count += weight * dram.latency_count
            l1_misses += weight * cache.l1.misses
            l1_accesses += weight * cache.l1.accesses
            l2_misses += weight * cache.l2.misses
            l2_accesses += weight * cache.l2.accesses
        predicted_values = {
            "read_bursts": read_bursts,
            "write_bursts": write_bursts,
            "avg_access_latency": (
                latency_sum / latency_count if latency_count else 0.0
            ),
            "l1_miss_rate": l1_misses / l1_accesses if l1_accesses else 0.0,
            "l2_miss_rate": l2_misses / l2_accesses if l2_accesses else 0.0,
        }

    metrics = {
        metric: {
            "predicted": predicted_values[metric],
            "full": full_values[metric],
            "error_percent": percent_error(
                predicted_values[metric], full_values[metric]
            ),
        }
        for metric in METRIC_NAMES
    }
    return SamplingReport(
        name=name, num_requests=len(columns), plan=plan, metrics=metrics
    )
