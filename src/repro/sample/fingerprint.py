"""Per-interval fingerprints over the outer temporal partition.

The sampling pipeline (see :mod:`repro.sample`) fingerprints every outer
temporal interval of a trace with the same features the workload
characterization layer computes (:mod:`repro.workloads.characterize`:
stride mix, burstiness, footprint, read fraction, ...), then clusters
the fingerprint vectors and simulates only representative intervals.

Interval semantics exactly mirror :mod:`repro.core.partition` — the
profiler's temporal splits are the sampling units, so a representative
interval's leaf models are literally a subset of the full profile's
leaves:

* ``request_count``: consecutive chunks of at most N requests;
* ``cycle_count``: bins of N cycles aligned to the first timestamp,
  empty bins skipped.

Two equivalent drivers produce the intervals: :func:`interval_slices`
for an in-memory trace, and :func:`iter_stream_intervals` for a stream
of fixed-size blocks (e.g. from :func:`repro.stream.iter_blocks`) —
the out-of-core path holds at most one open interval in memory and
yields bit-identical intervals in the same order.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Tuple, Union

from ..core.columnar import ColumnarTrace, as_columnar, numpy_or_none
from ..core.hierarchy import TemporalLayer
from ..core.trace import Trace
from ..workloads.characterize import (
    WorkloadCharacter,
    _burstiness,
    _stride_stats,
    characterize,
)

__all__ = [
    "FEATURE_NAMES",
    "IntervalFingerprint",
    "feature_vector",
    "fingerprint_intervals",
    "fingerprint_trace",
    "interval_slices",
    "iter_stream_intervals",
]

_INT64_MAX = 2**63 - 1
_UINT64_MAX = 2**64 - 1

#: The fingerprint dimensions, in vector order. Count-like features are
#: log-compressed so clustering distances are scale-balanced; fractions
#: and entropy are used as-is (all already O(1)).
FEATURE_NAMES: Tuple[str, ...] = (
    "log2_requests",
    "read_fraction",
    "log2_footprint_bytes",
    "log2_mean_request_bytes",
    "log2_burstiness",
    "stride_entropy_bits",
    "dominant_stride_fraction",
    "log2_region_count",
)


def feature_vector(character: WorkloadCharacter) -> Tuple[float, ...]:
    """The clustering vector of one interval's characterization."""
    mean_bytes = (
        character.total_bytes / character.requests if character.requests else 0.0
    )
    return (
        math.log2(character.requests + 1),
        character.read_fraction,
        math.log2(character.footprint_bytes + 1),
        math.log2(mean_bytes + 1.0),
        math.log2(character.burstiness + 1.0),
        character.stride_entropy_bits,
        character.dominant_stride_fraction,
        math.log2(character.region_count_4k + 1),
    )


class IntervalFingerprint:
    """One outer temporal interval's identity and feature vector."""

    __slots__ = ("index", "requests", "start_time", "character", "vector")

    def __init__(
        self,
        index: int,
        interval: ColumnarTrace,
        character: WorkloadCharacter = None,
    ):
        self.index = index
        self.requests = len(interval)
        self.start_time = int(interval.timestamps[0])
        self.character = character if character is not None else characterize(interval)
        self.vector = feature_vector(self.character)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalFingerprint(index={self.index}, requests={self.requests}, "
            f"start_time={self.start_time})"
        )


def _interval_starts(columns: ColumnarTrace, layer: TemporalLayer) -> List[int]:
    """Row offsets where a new outer interval begins (always includes 0)."""
    count = len(columns)
    if layer.kind == "request_count":
        return list(range(0, count, layer.size))
    if not columns.is_sorted():
        raise ValueError("requests must be sorted by timestamp")
    timestamps = columns.timestamps
    origin = int(timestamps[0])
    size = layer.size
    np = numpy_or_none()
    if np is not None and isinstance(timestamps, np.ndarray):
        bins = (timestamps - np.uint64(origin)) // np.uint64(size)
        cuts = np.flatnonzero(bins[1:] != bins[:-1]) + 1
        return [0] + [int(cut) for cut in cuts.tolist()]
    starts = [0]
    previous_bin = 0
    for position in range(1, count):
        bin_index = (int(timestamps[position]) - origin) // size
        if bin_index != previous_bin:
            starts.append(position)
            previous_bin = bin_index
    return starts


def interval_slices(
    trace: Union[Trace, ColumnarTrace], layer: TemporalLayer
) -> List[ColumnarTrace]:
    """The outer temporal intervals of a trace, as column slices.

    Matches :func:`repro.core.partition.partition_by_request_count` /
    :func:`~repro.core.partition.partition_by_cycle_count` request for
    request (empty cycle bins are skipped), which is what makes the
    sampled profile's leaves a subset of the full profile's leaves.
    """
    columns = as_columnar(trace)
    if not len(columns):
        return []
    starts = _interval_starts(columns, layer)
    bounds = starts + [len(columns)]
    return [columns[begin:end] for begin, end in zip(bounds, bounds[1:])]


def fingerprint_intervals(
    intervals: Iterable[ColumnarTrace],
) -> List[IntervalFingerprint]:
    """Fingerprint a sequence of intervals in order."""
    return [
        IntervalFingerprint(index, interval)
        for index, interval in enumerate(intervals)
    ]


def fingerprint_trace(
    trace: Union[Trace, ColumnarTrace], layer: TemporalLayer
) -> Tuple[List[ColumnarTrace], List[IntervalFingerprint]]:
    """Slice and fingerprint a whole trace in batched column passes.

    Equivalent to ``(interval_slices(trace, layer),
    fingerprint_intervals(...))`` — same intervals, bit-identical
    fingerprints — but the numpy fast path characterizes *all* intervals
    in a handful of whole-column segment reductions instead of one
    numpy round-trip per interval, which is what keeps the sampled
    profile build comfortably ahead of the full one even on many small
    intervals. Falls back to the per-interval path without numpy or when
    the exact-integer overflow guards trip.
    """
    columns = as_columnar(trace)
    if not len(columns):
        return [], []
    starts = _interval_starts(columns, layer)
    bounds = starts + [len(columns)]
    slices = [columns[begin:end] for begin, end in zip(bounds, bounds[1:])]
    np = numpy_or_none()
    if np is not None and isinstance(columns.timestamps, np.ndarray):
        characters = _characters_batched(np, columns, starts)
        if characters is not None:
            fingerprints = [
                IntervalFingerprint(index, interval, character)
                for index, (interval, character) in enumerate(
                    zip(slices, characters)
                )
            ]
            return slices, fingerprints
    return slices, fingerprint_intervals(slices)


def _sorted_by_segment(np, seg, values, segment_count: int):
    """``(seg, values)`` sorted by segment then value.

    When the value range and segment count pack into one int64 key
    (``key = seg << bits | (value - min)``) a single-key sort replaces
    the two-key lexsort — same ordering, roughly half the cost on the
    trace sizes the sampler sees. Falls back to ``np.lexsort`` for wide
    values.
    """
    if len(values):
        low = int(values.min())
        span = int(values.max()) - low
        bits = max(span.bit_length(), 1)
        if segment_count << bits <= _INT64_MAX:
            shifted = values.astype(np.int64) - np.int64(low)
            keys = (seg << np.int64(bits)) | shifted
            keys.sort()
            mask = np.int64((1 << bits) - 1)
            return keys >> np.int64(bits), (keys & mask) + np.int64(low)
    order = np.lexsort((values, seg))
    return seg[order], values[order]


def _segment_runs(np, seg, values, segment_count: int):
    """Run starts of sorted ``(seg, value)`` pairs.

    Returns ``(run_seg, run_value, run_count)`` with runs ordered by
    segment then ascending value — the canonical order every
    characterize path iterates unique values in.
    """
    seg_sorted, values_sorted = _sorted_by_segment(np, seg, values, segment_count)
    new_run = np.ones(len(seg), dtype=bool)
    if len(seg) > 1:
        new_run[1:] = (seg_sorted[1:] != seg_sorted[:-1]) | (
            values_sorted[1:] != values_sorted[:-1]
        )
    run_starts = np.flatnonzero(new_run)
    run_bounds = np.concatenate([run_starts, [len(seg)]])
    run_counts = run_bounds[1:] - run_bounds[:-1]
    return seg_sorted[run_starts], values_sorted[run_starts], run_counts


def _segment_pair_lists(np, seg, values, segment_count: int):
    """Per-segment ``[(value, count), ...]`` lists, values ascending."""
    pairs: List[List[Tuple[int, int]]] = [[] for _ in range(segment_count)]
    if len(seg):
        run_seg, run_value, run_count = _segment_runs(np, seg, values, segment_count)
        for segment, value, count in zip(
            run_seg.tolist(), run_value.tolist(), run_count.tolist()
        ):
            pairs[segment].append((value, count))
    return pairs


def _footprint_counts_per_segment(np, seg, addresses, segment_count: int):
    """Per-segment distinct 64B-block and 4KB-region counts, one sort.

    Sorting ``(seg, block)`` also sorts ``(seg, region)`` because
    ``region == block // 64`` is monotone in ``block`` — both unique
    counts come from the same ordering.
    """
    blocks = addresses // 64
    seg_sorted, blocks_sorted = _sorted_by_segment(np, seg, blocks, segment_count)
    regions_sorted = blocks_sorted // 64
    seg_changed = np.ones(len(seg), dtype=bool)
    if len(seg) > 1:
        seg_changed[1:] = seg_sorted[1:] != seg_sorted[:-1]
    block_run = seg_changed.copy()
    region_run = seg_changed
    if len(seg) > 1:
        block_run[1:] |= blocks_sorted[1:] != blocks_sorted[:-1]
        region_run[1:] |= regions_sorted[1:] != regions_sorted[:-1]
    block_counts = np.bincount(seg_sorted[block_run], minlength=segment_count)
    region_counts = np.bincount(seg_sorted[region_run], minlength=segment_count)
    return block_counts, region_counts


def _diff_segment_sums(np, diffs, lengths):
    """Exact per-segment (count, Σd, Σd²) over within-segment diffs.

    ``diffs`` must already exclude cross-segment positions; segment i
    owns ``lengths[i] - 1`` of them, in order. Cumulative sums stay
    exact because the caller guarantees the int64 magnitude guards.
    """
    counts = lengths - 1
    offsets = np.concatenate([[0], np.cumsum(counts)])
    cumulative = np.concatenate([[0], np.cumsum(diffs)])
    cumulative_sq = np.concatenate([[0], np.cumsum(diffs * diffs)])
    sums = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
    sq_sums = cumulative_sq[offsets[1:]] - cumulative_sq[offsets[:-1]]
    return counts.tolist(), sums.tolist(), sq_sums.tolist()


def _characters_batched(np, columns: ColumnarTrace, starts: List[int]):
    """Per-interval :class:`WorkloadCharacter` in whole-column passes.

    Bit-identical to running :func:`repro.workloads.characterize.characterize`
    on every interval slice: all float statistics derive from the same
    exact integer sufficient statistics (segment sums via int64/uint64
    reductions under conservative overflow guards) fed through the very
    same float helpers (``_burstiness``, ``_stride_stats``) in the same
    canonical orders. Returns ``None`` when a guard trips — callers fall
    back to the per-interval path, which handles arbitrary magnitudes.
    """
    timestamps = columns.timestamps
    addresses = columns.addresses
    sizes = columns.sizes
    ops = columns.ops
    total = len(columns)
    if int(timestamps.max()) > _INT64_MAX or int(addresses.max()) > _INT64_MAX:
        return None
    if total * int(sizes.max()) > _UINT64_MAX:
        return None

    segment_count = len(starts)
    bounds = np.array(starts + [total], dtype=np.int64)
    lengths = bounds[1:] - bounds[:-1]
    seg = np.repeat(np.arange(segment_count, dtype=np.int64), lengths)

    time_diffs = np.diff(timestamps.astype(np.int64))
    addr_diffs = np.diff(addresses.astype(np.int64))
    if len(time_diffs):
        max_gap = int(np.abs(time_diffs).max())
        if (
            max_gap * max_gap > _INT64_MAX
            or total * max_gap > _INT64_MAX
            or total * max_gap * max_gap > _INT64_MAX
        ):
            return None

    # Diff positions j relate rows j and j+1: within-segment iff both
    # rows share a segment.
    within = seg[1:] == seg[:-1] if total > 1 else np.zeros(0, dtype=bool)
    diff_seg = seg[1:][within] if total > 1 else seg[:0]

    gap_counts, gap_sums, gap_sq_sums = _diff_segment_sums(
        np, time_diffs[within], lengths
    )
    stride_pairs = _segment_pair_lists(
        np, diff_seg, addr_diffs[within], segment_count
    )
    size_pairs = _segment_pair_lists(np, seg, sizes.astype(np.int64), segment_count)

    op_sums = np.add.reduceat(ops.astype(np.int64), bounds[:-1]).tolist()
    byte_sums = np.add.reduceat(sizes.astype(np.uint64), bounds[:-1]).tolist()
    time_max = np.maximum.reduceat(timestamps, bounds[:-1]).tolist()
    time_min = np.minimum.reduceat(timestamps, bounds[:-1]).tolist()
    block_counts, region_counts = _footprint_counts_per_segment(
        np, seg, addresses, segment_count
    )
    block_counts = block_counts.tolist()
    region_counts = region_counts.tolist()

    characters = []
    for index in range(segment_count):
        requests = int(lengths[index])
        entropy, dominant_stride, dominant_fraction = _stride_stats(
            stride_pairs[index], requests - 1
        )
        characters.append(
            WorkloadCharacter(
                requests=requests,
                read_fraction=(requests - op_sums[index]) / requests,
                total_bytes=byte_sums[index],
                duration_cycles=time_max[index] - time_min[index],
                footprint_bytes=block_counts[index] * 64,
                size_histogram=dict(size_pairs[index]),
                burstiness=_burstiness(
                    gap_counts[index], gap_sums[index], gap_sq_sums[index]
                ),
                stride_entropy_bits=entropy,
                dominant_stride=dominant_stride,
                dominant_stride_fraction=dominant_fraction,
                region_count_4k=region_counts[index],
            )
        )
    return characters


def iter_stream_intervals(
    blocks: Iterable[ColumnarTrace], layer: TemporalLayer
) -> Iterator[Tuple[int, ColumnarTrace]]:
    """Yield ``(index, interval)`` from a stream of column blocks.

    The out-of-core twin of :func:`interval_slices`: blocks (any sizes,
    e.g. from :func:`repro.stream.iter_blocks`) are segmented against
    the same interval grid, buffering only the currently-open interval —
    peak memory is O(interval), never O(trace). Yielded intervals are
    bit-identical to the in-memory slices, in the same order.
    """
    open_parts: List[ColumnarTrace] = []
    open_bin = -1
    index = 0
    origin = None
    consumed = 0
    last_timestamp = -1
    for block in blocks:
        if not len(block):
            continue
        if layer.kind == "cycle_count":
            first = int(block.timestamps[0])
            if first < last_timestamp or not block.is_sorted():
                raise ValueError("requests must be sorted by timestamp")
            last_timestamp = int(block.timestamps[len(block) - 1])
            if origin is None:
                origin = first
        for begin, end, bin_index in _block_runs(block, layer, origin, consumed):
            if bin_index != open_bin and open_parts:
                yield index, ColumnarTrace.concat(open_parts)
                index += 1
                open_parts = []
            open_bin = bin_index
            open_parts.append(block[begin:end])
        consumed += len(block)
    if open_parts:
        yield index, ColumnarTrace.concat(open_parts)


def _block_runs(
    block: ColumnarTrace, layer: TemporalLayer, origin, offset: int
) -> List[Tuple[int, int, int]]:
    """(begin, end, bin_index) runs of one block against the grid."""
    count = len(block)
    if layer.kind == "request_count":
        size = layer.size
        runs = []
        position = 0
        while position < count:
            bin_index = (offset + position) // size
            take = min(count - position, (bin_index + 1) * size - (offset + position))
            runs.append((position, position + take, bin_index))
            position += take
        return runs
    size = layer.size
    timestamps = block.timestamps
    np = numpy_or_none()
    if np is not None and isinstance(timestamps, np.ndarray):
        bins = (timestamps - np.uint64(origin)) // np.uint64(size)
        cuts = np.flatnonzero(bins[1:] != bins[:-1]) + 1
        starts = [0] + [int(cut) for cut in cuts.tolist()]
        bounds = starts + [count]
        return [
            (begin, end, int(bins[begin]))
            for begin, end in zip(bounds, bounds[1:])
        ]
    runs = []
    begin = 0
    current = (int(timestamps[0]) - origin) // size
    for position in range(1, count):
        bin_index = (int(timestamps[position]) - origin) // size
        if bin_index != current:
            runs.append((begin, position, current))
            begin, current = position, bin_index
    runs.append((begin, count, current))
    return runs
