"""Statistical sampling: SimPoint-style interval selection for Mocktails.

Long traces spend most of their profile-build and replay time on
intervals that look alike. This package fingerprints every outer
temporal interval with the :mod:`repro.workloads.characterize` features
(:mod:`~repro.sample.fingerprint`), clusters the fingerprints with a
deterministic seeded k-means (:mod:`~repro.sample.cluster`), picks one
representative interval per cluster with an occupancy weight
(:mod:`~repro.sample.plan`), and estimates the full pipeline's Fig.
6/13/14 metrics from just those representatives
(:mod:`~repro.sample.estimator`), reporting predicted-vs-full error and
a declared error bound.

Guarantees:

* **deterministic** — every stage is a pure function of its inputs and
  the sampling seed; two runs are bit-identical;
* **exact when K covers everything** — ``k >= interval count`` runs the
  ordinary full pipeline, byte-identical output;
* **out-of-core** — fingerprints stream per block via
  :func:`repro.stream.iter_blocks`
  (:func:`~repro.sample.estimator.sampled_profile_from_file`).

Process-wide configuration mirrors the backend env contract
(:mod:`repro.core.columnar`): ``MOCKTAILS_SAMPLE_INTERVALS`` sets K
(unset/empty = sampling off), ``MOCKTAILS_SAMPLE_SEED`` the clustering
seed. :func:`sampling_fingerprint` folds both into
:mod:`repro.store.memo` cache keys so sampled and full results never
collide in the store.
"""

from __future__ import annotations

import os
from typing import Optional

from .cluster import KMeansResult, kmeans, normalize, squared_distance
from .estimator import (
    METRIC_NAMES,
    SamplingReport,
    build_sampled_profile,
    sampled_profile_from_file,
    sampling_comparison,
)
from .fingerprint import (
    FEATURE_NAMES,
    IntervalFingerprint,
    feature_vector,
    fingerprint_intervals,
    fingerprint_trace,
    interval_slices,
    iter_stream_intervals,
)
from .plan import (
    ERROR_BOUND_FLOOR_PERCENT,
    ERROR_BOUND_SCALE,
    SamplePlan,
    build_plan,
    default_sample_k,
    error_bound_percent,
)

__all__ = [
    "ERROR_BOUND_FLOOR_PERCENT",
    "ERROR_BOUND_SCALE",
    "FEATURE_NAMES",
    "METRIC_NAMES",
    "IntervalFingerprint",
    "KMeansResult",
    "SamplePlan",
    "SamplingReport",
    "build_plan",
    "build_sampled_profile",
    "configured_sample_intervals",
    "configured_sample_seed",
    "default_sample_k",
    "error_bound_percent",
    "feature_vector",
    "fingerprint_intervals",
    "fingerprint_trace",
    "interval_slices",
    "iter_stream_intervals",
    "kmeans",
    "normalize",
    "sampled_profile_from_file",
    "sampling_comparison",
    "sampling_fingerprint",
    "set_sampling",
    "squared_distance",
]

_K_ENV = "MOCKTAILS_SAMPLE_INTERVALS"
_SEED_ENV = "MOCKTAILS_SAMPLE_SEED"


def set_sampling(k: Optional[int], seed: Optional[int] = None) -> None:
    """Set (or clear, with ``k=None``) the process-wide sampling config."""
    if k is None:
        os.environ.pop(_K_ENV, None)
        os.environ.pop(_SEED_ENV, None)
        return
    if k <= 0:
        raise ValueError(f"sample interval count must be positive, got {k}")
    os.environ[_K_ENV] = str(k)
    if seed is not None:
        os.environ[_SEED_ENV] = str(seed)


def configured_sample_intervals() -> Optional[int]:
    """K from ``MOCKTAILS_SAMPLE_INTERVALS``, or ``None`` when sampling is off."""
    raw = os.environ.get(_K_ENV, "").strip()
    if not raw:
        return None
    try:
        k = int(raw)
    except ValueError:
        raise ValueError(f"{_K_ENV} must be an integer, got {raw!r}") from None
    if k <= 0:
        raise ValueError(f"{_K_ENV} must be positive, got {k}")
    return k


def configured_sample_seed() -> int:
    """Clustering seed from ``MOCKTAILS_SAMPLE_SEED`` (default 0)."""
    raw = os.environ.get(_SEED_ENV, "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{_SEED_ENV} must be an integer, got {raw!r}") from None


def sampling_fingerprint() -> str:
    """The sampling configuration as a cache-key component.

    ``"off"`` when sampling is disabled, else ``"k=<K>:seed=<S>"`` —
    folded into :func:`repro.store.memo.cache_key` so sampled results
    never alias full ones in the result store.
    """
    k = configured_sample_intervals()
    if k is None:
        return "off"
    return f"k={k}:seed={configured_sample_seed()}"
