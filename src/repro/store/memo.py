"""Cross-run experiment memoization on top of the content-addressed store.

The expensive unit of work in this repo is one :func:`execute_job`
payload (a baseline/McC/STM simulation trio, a SPEC synthetic-trace
quartet, or a size record). Each is fully deterministic in its job
dataclass plus the package code and default configuration — so once
computed, it can be reused by every later process.

Key derivation (invalidation rules):

* the canonicalized job dataclass (type name + every field, via
  ``dataclasses.asdict`` on sorted keys),
* the repro package version (bumping ``repro.__version__`` invalidates
  every cached payload, the blunt-but-safe answer to "the simulator
  changed"),
* a fingerprint of the default :class:`~repro.dram.config.MemoryConfig`
  (so editing Table III defaults invalidates DRAM-dependent entries),
* and the payload schema constant (bumped when the pickled payload
  layout changes).

Layout under the memo root::

    objects/<aa>/<digest>   sha256-addressed pickled payloads (the CAS)
    keys/<cache-key>        one small file: the payload's blob digest
    locks/<cache-key>.lock  per-key compute locks (repro.store.locks)

The key -> digest indirection keeps the blob store honest (blobs are
named by *content*, keys by *meaning*) and makes corruption recovery
trivial: a bad blob is evicted and its key file dropped, so the next
fetch misses and the caller recomputes.

Payloads are pickled. That is safe here because a cache directory is
written and read by the same trusted user (same threat model as
``~/.cache/pip``); integrity — not authenticity — is what the sha256
check buys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
import threading
from pathlib import Path
from typing import Any, List, Optional, Union

from .. import obs
from ..core.errors import CorruptArtifactError
from .atomic import atomic_write_text
from .cas import ContentAddressedStore
from .locks import FileLock

#: Bump when the pickled payload layout changes incompatibly.
MEMO_SCHEMA = 1

#: Pinned pickle protocol so one cache dir is portable across the
#: Python versions CI exercises.
_PICKLE_PROTOCOL = 4

_KEY_CHARS = set("0123456789abcdef")

_fingerprint_cache: Optional[str] = None


def _environment_fingerprint() -> str:
    """Code/config salt folded into every cache key.

    Imports lazily (and caches) to keep :mod:`repro.store` importable
    from inside ``repro``'s own package initialization.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        from .. import __version__
        from ..dram.config import MemoryConfig

        payload = json.dumps(
            {
                "schema": MEMO_SCHEMA,
                "version": __version__,
                "memory_config": repr(MemoryConfig()),
            },
            sort_keys=True,
        )
        _fingerprint_cache = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return _fingerprint_cache


def _active_backend() -> str:
    """The resolved trace backend, read live (not cached).

    The backend can change mid-process (``set_backend``, env overrides),
    so it cannot ride along in the cached environment fingerprint.
    Folding it into every key means columnar-era payloads can never
    collide with scalar-era entries — both backends are bit-identical by
    contract, but the cache must not be the thing relying on that.
    """
    from ..core.columnar import active_backend

    return active_backend()


def _active_sampling() -> str:
    """The live sampling configuration (``"off"`` or ``k=K:seed=S``).

    Like :func:`_active_backend` this is read per key, not cached:
    ``MOCKTAILS_SAMPLE_INTERVALS`` can change mid-process (CLI flags
    set and restore it around a run), and a sampled estimate must never
    alias the full pipeline's payload in the store.
    """
    from ..sample import sampling_fingerprint

    return sampling_fingerprint()


def cache_key(job: Any) -> str:
    """Stable hex cache key for one job dataclass."""
    if not dataclasses.is_dataclass(job):
        raise TypeError(f"jobs must be dataclasses, got {type(job).__name__}")
    canonical = json.dumps(
        {
            "env": _environment_fingerprint(),
            "backend": _active_backend(),
            "sampling": _active_sampling(),
            "kind": type(job).__name__,
            "fields": dataclasses.asdict(job),
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ExperimentMemo:
    """Durable memo table for ``execute_job`` payloads.

    Tracks its own hit/miss/corrupt tallies (plain ints, always on) and
    mirrors them into :mod:`repro.obs` counters (``store.memo.*``) when
    a registry is active.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.cas = ContentAddressedStore(self.root)
        self._keys = self.root / "keys"
        self._locks = self.root / "locks"
        self._keys.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        # One memo is shared by every scheduler worker thread; the
        # tallies are read-modify-write and need a leaf lock (never
        # held across I/O — see the lock-ordering contract in
        # repro.store.locks).
        self._tally_lock = threading.Lock()

    # -- key index -----------------------------------------------------------

    def _key_path(self, key: str) -> Path:
        if len(key) != 64 or any(c not in _KEY_CHARS for c in key):
            raise ValueError(f"not a memo cache key: {key!r}")
        return self._keys / key

    def _read_digest(self, key: str) -> Optional[str]:
        try:
            digest = self._key_path(key).read_text().strip()
        except (OSError, UnicodeDecodeError):
            return None
        if len(digest) != 64 or any(c not in _KEY_CHARS for c in digest):
            return None
        return digest

    def _drop_key(self, key: str) -> None:
        try:
            self._key_path(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        """Every cache key currently indexed."""
        if not self._keys.is_dir():
            return []
        return sorted(p.name for p in self._keys.iterdir() if len(p.name) == 64)

    # -- memoization ----------------------------------------------------------

    def _count(self, counter: str) -> None:
        registry = obs.active()
        if registry is not None:
            registry.counter(f"store.memo.{counter}").inc()

    def _miss(self, corrupt: bool = False) -> None:
        with self._tally_lock:
            self.misses += 1
            if corrupt:
                self.corrupt += 1
        if corrupt:
            self._count("corrupt")
        self._count("misses")

    def fetch(self, job: Any) -> Optional[Any]:
        """The memoized payload for ``job``, or ``None`` on a miss.

        A corrupt blob (failed sha256 check *or* an unpicklable payload)
        counts as a miss: the blob and its key entry are evicted so the
        caller recomputes and overwrites, never re-reads garbage.
        """
        key = cache_key(job)
        digest = self._read_digest(key)
        if digest is None:
            self._miss()
            return None
        try:
            blob = self.cas.get(digest)
            payload = pickle.loads(blob)
        except CorruptArtifactError:
            self.cas.evict(digest)
            self._drop_key(key)
            self._miss(corrupt=True)
            return None
        except KeyError:
            self._drop_key(key)
            self._miss()
            return None
        except Exception:
            # Undecodable pickle: treat exactly like a corrupt blob.
            self.cas.evict(digest)
            self._drop_key(key)
            self._miss(corrupt=True)
            return None
        with self._tally_lock:
            self.hits += 1
        self._count("hits")
        return payload

    def store(self, job: Any, payload: Any) -> str:
        """Memoize ``payload`` under ``job``'s key; returns the blob digest."""
        key = cache_key(job)
        digest = self.cas.put(pickle.dumps(payload, protocol=_PICKLE_PROTOCOL))
        atomic_write_text(self._key_path(key), digest + "\n")
        self._count("stores")
        return digest

    def lock(self, job: Any, timeout: float = 600.0) -> FileLock:
        """The per-key compute lock for ``job``."""
        return FileLock(self._locks / f"{cache_key(job)}.lock", timeout=timeout)

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> dict:
        cas_stats = self.cas.stats()
        with self._tally_lock:
            session = {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
            }
        return {
            "root": str(self.root),
            "entries": len(self.keys()),
            "blobs": cas_stats["blobs"],
            "bytes": cas_stats["bytes"],
            "session": session,
        }

    def verify(self, evict_corrupt: bool = True) -> dict:
        """Integrity-check every blob and prune dangling key entries.

        Returns ``{"checked", "corrupt", "dangling"}``. With
        ``evict_corrupt`` (the default) failing blobs are removed, so
        the next run recomputes them.
        """
        checked = len(list(self.cas.digests()))
        corrupt = self.cas.verify(evict_corrupt=evict_corrupt)
        dangling = []
        for key in self.keys():
            digest = self._read_digest(key)
            if digest is None or not self.cas.contains(digest):
                dangling.append(key)
                if evict_corrupt:
                    self._drop_key(key)
        return {"checked": checked, "corrupt": corrupt, "dangling": dangling}

    def gc(self, max_bytes: int) -> List[str]:
        """LRU-evict blobs past the byte budget, then prune their keys."""
        evicted = self.cas.gc(max_bytes)
        if evicted:
            gone = set(evicted)
            for key in self.keys():
                digest = self._read_digest(key)
                if digest is not None and digest in gone:
                    self._drop_key(key)
        return evicted

    def clear(self) -> int:
        """Drop every entry; returns the number of blobs removed."""
        removed = 0
        for digest in list(self.cas.digests()):
            removed += self.cas.evict(digest)
        for key in self.keys():
            self._drop_key(key)
        return removed
