"""``repro.store`` — persistent content-addressed result store.

Three layers, bottom up:

* :mod:`repro.store.atomic` — the crash-safe write helper every
  artifact writer in the repo goes through (temp file + ``os.replace``);
* :mod:`repro.store.cas` — a sha256-keyed blob store with integrity
  verification on read and a size-capped LRU garbage collector;
* :mod:`repro.store.memo` — experiment memoization: ``execute_job``
  payloads keyed on the canonicalized job dataclass, the package
  version and the default-config fingerprint, locked per key
  (:mod:`repro.store.locks`) so concurrent runs never double-compute.

The experiment runners consult a process-wide *active* memo, installed
with :func:`configure` (the CLI does this by default, pointing at
``~/.cache/repro``; ``--no-cache`` opts out)::

    from repro import store

    store.configure()                 # ~/.cache/repro (or $REPRO_CACHE_DIR)
    run_experiment("fig6", 20_000)    # warm runs load, not simulate
    store.deactivate()

A warm run is bit-identical to a cold one — the memo stores the exact
payload objects the runners would have computed, and the aggregation
code downstream of the cache is shared.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .atomic import atomic_write_bytes, atomic_write_text
from .cas import ContentAddressedStore, sha256_hex
from .locks import FileLock, LockTimeout
from .memo import MEMO_SCHEMA, ExperimentMemo, cache_key

__all__ = [
    "ContentAddressedStore",
    "ExperimentMemo",
    "FileLock",
    "LockTimeout",
    "MEMO_SCHEMA",
    "active_memo",
    "atomic_write_bytes",
    "atomic_write_text",
    "cache_key",
    "configure",
    "deactivate",
    "default_cache_dir",
    "sha256_hex",
]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


_active_memo: Optional[ExperimentMemo] = None


def active_memo() -> Optional[ExperimentMemo]:
    """The process-wide memo, or ``None`` when cross-run caching is off."""
    return _active_memo


def configure(cache_dir: Optional[Union[str, Path]] = None) -> ExperimentMemo:
    """Install (and return) the process-wide experiment memo."""
    global _active_memo
    _active_memo = ExperimentMemo(cache_dir if cache_dir is not None else default_cache_dir())
    return _active_memo


def deactivate() -> None:
    """Stop consulting the cross-run cache (files stay on disk)."""
    global _active_memo
    _active_memo = None
