"""Per-key lockfile protocol for the experiment store.

Multiple writers can race on the same cache key: ``--jobs N`` worker
fan-out in one process, and entirely separate CLI invocations sharing
one ``--cache-dir``. The memo layer takes a :class:`FileLock` around
each compute-and-store so the work is done once — late arrivals wait,
then read the stored result instead of recomputing it.

The lock is a classic ``O_CREAT | O_EXCL`` lockfile (portable, works on
any filesystem, no fcntl needed). Liveness: the holder writes its PID
into the file; a waiter that finds the lock older than ``stale_after``
seconds *or* held by a dead PID breaks it, so a ``kill -9``'d run never
wedges the cache. Correctness under a broken lock degrades gracefully —
two computes of a deterministic job store byte-equal payloads, and blob
writes are atomic, so the worst case is wasted work, never a torn read.

Lock-ordering contract (checked statically by ``conc-lock-order`` and at
runtime by the sanitizer in :mod:`repro.lint.sanitize`): the per-key
:class:`FileLock` is the *outermost* level of the repo's lock hierarchy.
It may be held across compute-and-store (that is its job), and the
engine's in-process leaf locks may be taken underneath it — but no code
may acquire a :class:`FileLock` while holding any in-process lock, and
the analyzer models every ``FileLock`` as one hierarchy node
(``repro.store.locks.FileLock``) so an inversion against the scheduler's
locks is reported regardless of which cache key is involved.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..obs.clock import wall_time

#: The single hierarchy node every FileLock reports as (see module doc).
_OBSERVER_NODE = "repro.store.locks.FileLock"

_observer: Optional[Any] = None


def set_lock_observer(observer: Optional[Any]) -> None:
    """Install (or clear) the acquisition observer for every FileLock.

    The observer — in practice the lock-order sanitizer
    (:class:`repro.lint.sanitize.LockOrderChecker`) — receives
    ``acquired(name)`` / ``released(name)`` callbacks with the static
    hierarchy node name. Observation-only: it must not block or raise.
    The default (``None``) path costs one global read per acquire.
    """
    global _observer
    _observer = observer


class LockTimeout(TimeoutError):
    """Waited longer than ``timeout`` seconds for a lock."""


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


class FileLock:
    """An exclusive advisory lock backed by an ``O_EXCL`` lockfile."""

    def __init__(
        self,
        path: Union[str, Path],
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        stale_after: float = 3600.0,
    ):
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._held = False

    # -- internals ----------------------------------------------------------

    def _try_create(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        self._held = True
        return True

    def _holder_pid(self) -> Optional[int]:
        try:
            text = self.path.read_text().strip()
        except (OSError, UnicodeDecodeError):
            return None
        try:
            return int(text)
        except ValueError:
            return None

    def _is_stale(self) -> bool:
        try:
            age = wall_time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return False
        if age > self.stale_after:
            return True
        pid = self._holder_pid()
        return pid is not None and pid != os.getpid() and not _pid_alive(pid)

    def _break_stale(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # -- public API ----------------------------------------------------------

    def acquire(self, block: bool = True) -> bool:
        """Take the lock; returns whether it was acquired.

        Non-blocking (``block=False``) returns ``False`` immediately if
        the lock is live in another holder's hands. Blocking mode polls
        until acquisition or :class:`LockTimeout`.
        """
        if self._held:
            raise RuntimeError(f"lock already held: {self.path}")
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_create():
                observer = _observer
                if observer is not None:
                    observer.acquired(_OBSERVER_NODE)
                return True
            if self._is_stale():
                self._break_stale()
                continue
            if not block:
                return False
            if time.monotonic() >= deadline:
                raise LockTimeout(f"timed out waiting for lock: {self.path}")
            time.sleep(self.poll_interval)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        observer = _observer
        if observer is not None:
            observer.released(_OBSERVER_NODE)
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - broken as stale
            pass

    def wait_released(self, timeout: Optional[float] = None) -> bool:
        """Block until the lock is free (without taking it)."""
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        while self.path.exists():
            if self._is_stale():
                self._break_stale()
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_interval)
        return True

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
