"""Content-addressed blob store.

Blobs are immutable byte strings keyed by the sha256 of their contents
and laid out git-style under ``root/objects/<aa>/<rest>`` (two-hex-char
fan-out directories). Three properties matter to the callers:

* **Atomicity** — blobs are written via the shared temp-file +
  ``os.replace`` helper (:mod:`repro.store.atomic`), so a killed writer
  never leaves a partial blob under its final name.
* **Integrity** — every read re-hashes the blob and compares it against
  its name. A mismatch (bit rot, a truncated copy, a tampered file)
  raises :class:`~repro.core.errors.CorruptArtifactError`; callers are
  expected to :meth:`~ContentAddressedStore.evict` and recompute.
* **Bounded size** — :meth:`~ContentAddressedStore.gc` evicts
  least-recently-used blobs (reads bump an access timestamp) until the
  store fits a byte budget.

All mutations and reads bump :mod:`repro.obs` counters
(``store.cas.*``) when observability is enabled.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Iterator, List, Union

from .. import obs
from ..core.errors import CorruptArtifactError
from .atomic import atomic_write_bytes

_OBJECTS_DIR = "objects"


def sha256_hex(data: bytes) -> str:
    """Hex digest used as the blob's address."""
    return hashlib.sha256(data).hexdigest()


class ContentAddressedStore:
    """Disk-backed sha256-keyed blob store with LRU garbage collection."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._objects = self.root / _OBJECTS_DIR
        self._objects.mkdir(parents=True, exist_ok=True)

    # -- addressing ---------------------------------------------------------

    def _path(self, digest: str) -> Path:
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a sha256 hex digest: {digest!r}")
        return self._objects / digest[:2] / digest[2:]

    # -- blob operations ----------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store ``data``; returns its digest. Idempotent per content."""
        digest = sha256_hex(data)
        path = self._path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
            registry = obs.active()
            if registry is not None:
                registry.counter("store.cas.puts").inc()
                registry.counter("store.cas.bytes_written").inc(len(data))
        return digest

    def get(self, digest: str) -> bytes:
        """Read and verify a blob.

        Raises :class:`KeyError` if the blob is absent and
        :class:`CorruptArtifactError` if its contents no longer hash to
        its name (the corrupt blob is left in place so the caller can
        decide to :meth:`evict`). A successful read bumps the blob's
        access time, which drives LRU eviction in :meth:`gc`.
        """
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None
        if sha256_hex(data) != digest:
            registry = obs.active()
            if registry is not None:
                registry.counter("store.cas.corrupt").inc()
            raise CorruptArtifactError(path, "blob contents do not match digest")
        os.utime(path, None)
        registry = obs.active()
        if registry is not None:
            registry.counter("store.cas.gets").inc()
            registry.counter("store.cas.bytes_read").inc(len(data))
        return data

    def contains(self, digest: str) -> bool:
        return self._path(digest).exists()

    def evict(self, digest: str) -> bool:
        """Remove one blob; returns whether it existed."""
        try:
            self._path(digest).unlink()
        except FileNotFoundError:
            return False
        registry = obs.active()
        if registry is not None:
            registry.counter("store.cas.evictions").inc()
        return True

    # -- maintenance ---------------------------------------------------------

    def digests(self) -> Iterator[str]:
        """All stored digests (unordered)."""
        if not self._objects.is_dir():
            return
        for fanout in sorted(self._objects.iterdir()):
            if not fanout.is_dir() or len(fanout.name) != 2:
                continue
            for blob in sorted(fanout.iterdir()):
                yield fanout.name + blob.name

    def stats(self) -> dict:
        """Blob count and total bytes on disk."""
        blobs = 0
        total = 0
        for digest in self.digests():
            path = self._path(digest)
            try:
                total += path.stat().st_size
            except FileNotFoundError:  # pragma: no cover - concurrent gc
                continue
            blobs += 1
        return {"blobs": blobs, "bytes": total}

    def verify(self, evict_corrupt: bool = False) -> List[str]:
        """Re-hash every blob; returns the digests that fail.

        With ``evict_corrupt`` the failing blobs are removed so the next
        consumer recomputes them instead of reading garbage.
        """
        corrupt = []
        for digest in list(self.digests()):
            try:
                self.get(digest)
            except CorruptArtifactError:
                corrupt.append(digest)
                if evict_corrupt:
                    self.evict(digest)
            except KeyError:  # pragma: no cover - concurrent eviction
                continue
        return corrupt

    def gc(self, max_bytes: int) -> List[str]:
        """Evict least-recently-used blobs until total size <= max_bytes.

        Returns the evicted digests, oldest first. Access order comes
        from the files' access timestamps, which :meth:`get` refreshes.
        """
        entries = []
        total = 0
        for digest in self.digests():
            path = self._path(digest)
            try:
                stat = path.stat()
            except FileNotFoundError:  # pragma: no cover - concurrent gc
                continue
            entries.append((stat.st_atime, stat.st_mtime, digest, stat.st_size))
            total += stat.st_size
        evicted = []
        for _atime, _mtime, digest, size in sorted(entries):
            if total <= max_bytes:
                break
            if self.evict(digest):
                total -= size
                evicted.append(digest)
        return evicted
