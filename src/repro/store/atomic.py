"""Crash-safe file writes: temp file + ``os.replace``.

Every artifact writer in the repo (profiles, traces, manifests, cache
blobs) funnels through this helper, so an interrupted run — ``kill -9``
mid-write, a full disk, a crashing serializer — can never leave a
truncated artifact at the destination path. The destination either
still holds its previous contents or holds the complete new payload;
readers never observe an intermediate state.

The temp file is created *in the destination directory* (not ``/tmp``)
so the final ``os.replace`` is a same-filesystem rename, which POSIX
guarantees to be atomic.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> int:
    """Atomically write ``data`` to ``path``; returns bytes written.

    The payload is written to a uniquely named temp file next to the
    destination, flushed and fsynced, then renamed over the destination
    in one atomic step. On any failure the temp file is removed and the
    destination is left untouched.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, temp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> int:
    """Atomically write ``text`` to ``path``; returns bytes written."""
    return atomic_write_bytes(path, text.encode(encoding))
