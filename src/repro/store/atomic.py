"""Crash-safe file writes: temp file + ``os.replace``.

Every artifact writer in the repo (profiles, traces, manifests, cache
blobs) funnels through this helper, so an interrupted run — ``kill -9``
mid-write, a full disk, a crashing serializer — can never leave a
truncated artifact at the destination path. The destination either
still holds its previous contents or holds the complete new payload;
readers never observe an intermediate state.

The temp file is created *in the destination directory* (not ``/tmp``)
so the final ``os.replace`` is a same-filesystem rename, which POSIX
guarantees to be atomic.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> int:
    """Atomically write ``data`` to ``path``; returns bytes written.

    The payload is written to a uniquely named temp file next to the
    destination, flushed and fsynced, then renamed over the destination
    in one atomic step. On any failure the temp file is removed and the
    destination is left untouched.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, temp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> int:
    """Atomically write ``text`` to ``path``; returns bytes written."""
    return atomic_write_bytes(path, text.encode(encoding))


class AtomicFileWriter:
    """Incremental atomic writes: many ``write()`` calls, one rename.

    :func:`atomic_write_bytes` needs the whole payload in memory; the
    streaming writers (chunked synthesis-to-disk, trace block writers)
    produce output block by block and must never hold it all at once.
    This class hands out a real binary file handle to a temp file next
    to the destination; :meth:`commit` flushes, fsyncs and renames it
    over ``path`` in one atomic step, :meth:`abort` discards it. Used as
    a context manager it commits on success and aborts on any exception
    — a kill mid-write leaves the destination untouched.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        directory = self.path.parent if str(self.path.parent) else Path(".")
        fd, self._temp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}.", suffix=".tmp", dir=directory
        )
        self.handle = os.fdopen(fd, "w+b")
        self._committed = False

    def write(self, data: bytes) -> int:
        return self.handle.write(data)

    def tell(self) -> int:
        return self.handle.tell()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self.handle.seek(offset, whence)

    def commit(self) -> int:
        """Flush, fsync, and atomically publish; returns file size."""
        if self._committed:
            raise RuntimeError(f"{self.path}: already committed")
        self.handle.flush()
        os.fsync(self.handle.fileno())
        size = self.handle.seek(0, os.SEEK_END)
        self.handle.close()
        os.replace(self._temp_name, self.path)
        self._committed = True
        return size

    def abort(self) -> None:
        """Discard the temp file; the destination is left untouched."""
        if self._committed:
            return
        try:
            self.handle.close()
        finally:
            try:
                os.unlink(self._temp_name)
            except OSError:
                pass

    def __enter__(self) -> "AtomicFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._committed:
            self.commit()
        else:
            self.abort()
