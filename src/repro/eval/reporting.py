"""Plain-text table/series rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
