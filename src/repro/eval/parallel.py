"""Process-pool fan-out for the experiment runners.

The expensive experiments are embarrassingly parallel: Figs. 6-13 run
one independent baseline/McC/STM simulation trio per (workload,
interval), and Figs. 14-17 sweep 23 independent SPEC-like benchmarks.
This module fans those unit jobs out across worker processes and merges
the results back into the caches the figure runners read
(:mod:`repro.eval.comparison` and :mod:`repro.eval.experiments`), so a
subsequent figure call computes nothing — it only aggregates.

Determinism: every job carries its seeds explicitly and the workload
generators derive their RNG streams from stable (crc32) name hashes, so
a worker process reproduces exactly the simulation the serial path
would have run. Figure results after a parallel prewarm are therefore
bit-identical to serial execution — the aggregation code is literally
the same, only the cache-fill order differs (and every cache is keyed,
never order-dependent).

Usage::

    from repro.eval.parallel import jobs_for, prewarm

    prewarm(jobs_for("fig6", 20_000), processes=4)
    figure_6(20_000)          # served entirely from the warmed cache

or, end to end::

    run_experiment("fig6", 20_000, processes=4)
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs, store
from ..workloads.registry import TABLE_II_WORKLOADS
from ..workloads.spec import FIG15_BENCHMARKS, SPEC_BENCHMARKS
from . import comparison, experiments
from .comparison import DEFAULT_INTERVAL, DEFAULT_REQUESTS


@dataclass(frozen=True)
class DramJob:
    """One baseline/McC(/STM) DRAM simulation trio (Figs. 6-13)."""

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL
    include_stm: bool = True


@dataclass(frozen=True)
class SpecJob:
    """Baseline + three synthetic traces for one SPEC-like benchmark
    (Figs. 14-16)."""

    benchmark: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0


@dataclass(frozen=True)
class SizeJob:
    """Trace/profile on-disk size measurement for one benchmark (Fig. 17)."""

    benchmark: str
    num_requests: int = DEFAULT_REQUESTS


@dataclass(frozen=True)
class SampleJob:
    """One sampled-vs-full fidelity report (repro.sample estimator)."""

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL
    k: Optional[int] = None
    sample_seed: int = 0


Job = Union[DramJob, SpecJob, SizeJob, SampleJob]


def execute_job(job: Job) -> Tuple[Job, object]:
    """Run one job (in whatever process this is) and return its payload."""
    if isinstance(job, DramJob):
        payload = comparison.dram_comparison(
            job.name,
            job.num_requests,
            seed=job.seed,
            interval=job.interval,
            include_stm=job.include_stm,
        )
    elif isinstance(job, SpecJob):
        payload = experiments.spec_synthetics(job.benchmark, job.num_requests, job.seed)
    elif isinstance(job, SizeJob):
        payload = experiments.spec_size_record(job.benchmark, job.num_requests)
    elif isinstance(job, SampleJob):
        payload = experiments.sampling_report_for(
            job.name,
            job.num_requests,
            seed=job.seed,
            interval=job.interval,
            k=job.k,
            sample_seed=job.sample_seed,
        )
    else:
        raise TypeError(f"unknown job type: {job!r}")
    return job, payload


def _install(job: Job, payload: object) -> None:
    """Merge one job result into the cache its figure runner reads."""
    if isinstance(job, DramJob):
        key = (job.name, job.num_requests, job.seed, job.interval, job.include_stm, None)
        comparison._run_cache[key] = payload
    elif isinstance(job, SpecJob):
        experiments._SPEC_SYNTH_CACHE[(job.benchmark, job.num_requests, job.seed)] = payload
    elif isinstance(job, SizeJob):
        experiments._SPEC_SIZE_CACHE[(job.benchmark, job.num_requests)] = payload
    elif isinstance(job, SampleJob):
        experiments._SAMPLING_CACHE[_sample_key(job)] = payload
    else:  # pragma: no cover - guarded in execute_job
        raise TypeError(f"unknown job type: {job!r}")


def _sample_key(job: "SampleJob") -> Tuple:
    return (job.name, job.num_requests, job.seed, job.interval, job.k, job.sample_seed)


def default_processes() -> int:
    """Worker count when none is given: all cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _worker_init() -> None:
    # Workers must not inherit the parent's registry/sink: their metrics
    # would die with the process and a forked JSONL file handle would
    # interleave with the parent's stream. The parent emits heartbeat
    # events as worker results arrive instead.
    obs.disable()


def make_pool(processes: int) -> ProcessPoolExecutor:
    """A worker pool with the repo's standard setup (fork-preferred,
    observability disabled in workers). Shared with the streaming
    profiler's shard fan-out (:mod:`repro.stream.parallel`)."""
    # fork (where available) keeps workers cheap; spawn works too because
    # jobs and payloads are plain picklable dataclasses.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(
        max_workers=processes, mp_context=context, initializer=_worker_init
    )


_make_pool = make_pool


def _fetch_memoized(jobs: List[Job], memo) -> List[Job]:
    """Install disk-memoized results; returns the jobs still to compute."""
    registry = obs.active()
    remaining = []
    for job in jobs:
        payload = memo.fetch(job)
        if payload is None:
            remaining.append(job)
        else:
            _install(job, payload)
            if registry is not None:
                registry.counter("eval.jobs.memoized").inc()
    return remaining


def _partition_by_lock(todo: List[Job], memo) -> Tuple[List[Tuple[Job, object]], List[Job]]:
    """Try to claim each job's compute lock without blocking.

    Returns ``(claimed, contended)``: jobs whose lock we now hold (we
    compute them) and jobs another process is already computing (we wait
    for its result instead of duplicating the work).
    """
    claimed: List[Tuple[Job, object]] = []
    contended: List[Job] = []
    for job in todo:
        lock = memo.lock(job)
        if lock.acquire(block=False):
            claimed.append((job, lock))
        else:
            contended.append(job)
    return claimed, contended


def _execute_and_install(todo: List[Job], processes: int, memo) -> None:
    """Run ``todo`` (serially or via the pool), installing and memoizing."""
    registry = obs.active()
    serial = processes <= 1 or len(todo) == 1
    if registry is not None:
        registry.counter("eval.jobs.executed").inc(len(todo))
        registry.event(
            "prewarm.start",
            total=len(todo),
            processes=1 if serial else min(processes, len(todo)),
        )
    if serial:
        results = map(execute_job, todo)
    else:
        pool = _make_pool(min(processes, len(todo)))
        results = pool.map(execute_job, todo)
    try:
        completed = 0
        for job, payload in results:
            _install(job, payload)
            if memo is not None:
                memo.store(job, payload)
            completed += 1
            if registry is not None:
                registry.event(
                    "worker.heartbeat",
                    completed=completed,
                    total=len(todo),
                    job=type(job).__name__,
                )
    finally:
        if not serial:
            pool.shutdown()
    if registry is not None:
        registry.event("prewarm.finish", total=len(todo))


def prewarm(jobs: Sequence[Job], processes: Optional[int] = None) -> int:
    """Execute ``jobs`` and merge the results into the runner caches.

    With ``processes`` <= 1 the jobs run serially in this process (still
    warming the caches, so the figure call afterwards is identical
    either way). Returns the number of jobs actually executed — jobs
    whose results are already in the in-process caches, memoized on
    disk (:func:`repro.store.active_memo`), or computed concurrently by
    another process holding the per-key lock are skipped.
    """
    jobs = list(dict.fromkeys(jobs))
    todo = [job for job in jobs if not _is_cached(job)]
    registry = obs.active()
    if registry is not None:
        registry.counter("eval.jobs.cached").inc(len(jobs) - len(todo))
    memo = store.active_memo()
    if todo and memo is not None:
        todo = _fetch_memoized(todo, memo)
    if not todo:
        return 0
    processes = default_processes() if processes is None else processes

    if memo is None:
        _execute_and_install(todo, processes, None)
        return len(todo)

    # Per-key lock protocol: claim what we can, compute only that, and
    # wait-then-fetch what a concurrent run is already computing.
    claimed, contended = _partition_by_lock(todo, memo)
    executed = 0
    try:
        if claimed:
            _execute_and_install([job for job, _ in claimed], processes, memo)
            executed += len(claimed)
    finally:
        for _, lock in claimed:
            lock.release()
    for job in contended:
        memo.lock(job).wait_released()
        payload = memo.fetch(job)
        if payload is not None:
            _install(job, payload)
            continue
        # The other holder died or failed: compute it ourselves, under
        # the lock so yet another waiter doesn't duplicate the work.
        with memo.lock(job):
            payload = memo.fetch(job)
            if payload is None:
                _execute_and_install([job], 1, memo)
                executed += 1
            else:
                _install(job, payload)
    return executed


def _is_cached(job: Job) -> bool:
    if isinstance(job, DramJob):
        key = (job.name, job.num_requests, job.seed, job.interval, job.include_stm, None)
        return key in comparison._run_cache
    if isinstance(job, SpecJob):
        return (job.benchmark, job.num_requests, job.seed) in experiments._SPEC_SYNTH_CACHE
    if isinstance(job, SizeJob):
        return (job.benchmark, job.num_requests) in experiments._SPEC_SIZE_CACHE
    if isinstance(job, SampleJob):
        return _sample_key(job) in experiments._SAMPLING_CACHE
    return False


# ---------------------------------------------------------------------------
# Experiment -> job-list mapping
# ---------------------------------------------------------------------------


def _device_sweep(num_requests: int, **_: object) -> List[Job]:
    return [DramJob(name, num_requests) for name in TABLE_II_WORKLOADS]


def _workloads(*names: str) -> Callable[..., List[Job]]:
    def jobs(num_requests: int, **_: object) -> List[Job]:
        return [DramJob(name, num_requests) for name in names]

    return jobs


def _fig13_jobs(
    num_requests: int, intervals: Optional[Sequence[int]] = None, **_: object
) -> List[Job]:
    intervals = experiments.FIG13_INTERVALS if intervals is None else intervals
    return [
        DramJob(name, num_requests, interval=interval, include_stm=False)
        for interval in intervals
        for name in TABLE_II_WORKLOADS
    ]


def _spec_sweep(
    default_benchmarks: Sequence[str],
) -> Callable[..., List[Job]]:
    def jobs(
        num_requests: int, benchmarks: Optional[Sequence[str]] = None, **_: object
    ) -> List[Job]:
        names = default_benchmarks if benchmarks is None else benchmarks
        return [SpecJob(benchmark, num_requests) for benchmark in names]

    return jobs


def _fig17_jobs(
    num_requests: int, benchmarks: Optional[Sequence[str]] = None, **_: object
) -> List[Job]:
    names = SPEC_BENCHMARKS if benchmarks is None else benchmarks
    return [SizeJob(benchmark, num_requests) for benchmark in names]


def _sampling_jobs(
    num_requests: int,
    workloads: Optional[Sequence[str]] = None,
    k: Optional[int] = None,
    sample_seed: Optional[int] = None,
    **_: object,
) -> List[Job]:
    # Resolve the process-wide sampling configuration here so the jobs
    # (and therefore the memo cache keys) carry explicit parameters.
    from ..sample import configured_sample_intervals, configured_sample_seed

    if k is None:
        k = configured_sample_intervals()
    if sample_seed is None:
        sample_seed = configured_sample_seed()
    names = TABLE_II_WORKLOADS if workloads is None else workloads
    return [
        SampleJob(name, num_requests, k=k, sample_seed=sample_seed) for name in names
    ]


JOB_BUILDERS: Dict[str, Callable[..., List[Job]]] = {
    "fig6": _device_sweep,
    "fig7": _device_sweep,
    "fig8": _workloads("trex1"),
    "fig9": _device_sweep,
    "fig10": _workloads("fbc-linear1", "fbc-tiled1"),
    "fig11": _workloads("fbc-linear1", "fbc-tiled1"),
    "fig12": _workloads("fbc-linear1"),
    "fig13": _fig13_jobs,
    "fig14": _spec_sweep(SPEC_BENCHMARKS),
    "fig15": _spec_sweep(tuple(FIG15_BENCHMARKS)),
    "fig16": _spec_sweep(tuple(FIG15_BENCHMARKS)),
    "fig17": _fig17_jobs,
    "sampling": _sampling_jobs,
}


def jobs_for(experiment: str, num_requests: int, **kwargs: object) -> List[Job]:
    """The unit jobs behind one experiment's runner.

    ``kwargs`` mirror the runner's own keyword arguments where they
    change the work to be done (``intervals`` for fig13, ``benchmarks``
    for figs 14-17). Experiments without a parallel decomposition
    (fig2/fig3/table1 and the extension studies are single-simulation
    or trivially cheap) return an empty list.
    """
    builder = JOB_BUILDERS.get(experiment)
    if builder is None:
        return []
    return builder(num_requests, **kwargs)


def run_experiment(
    experiment: str,
    num_requests: int,
    processes: Optional[int] = None,
    **kwargs: object,
):
    """Prewarm an experiment's jobs in parallel, then run its runner."""
    runner = getattr(experiments, _RUNNER_NAMES[experiment])
    prewarm(jobs_for(experiment, num_requests, **kwargs), processes=processes)
    return runner(num_requests, **kwargs)


_RUNNER_NAMES = {
    name: f"figure_{name[3:]}" for name in JOB_BUILDERS if name.startswith("fig")
}
_RUNNER_NAMES["sampling"] = "sampling_fidelity"
