"""Experiment-side client of the shared job engine (:mod:`repro.engine`).

The job model that used to live here — the ``DramJob``/``SpecJob``/
``SizeJob``/``SampleJob`` dataclasses, ``execute_job``, the pool
construction and the ``prewarm`` fan-out with its per-key lock protocol
— moved to :mod:`repro.engine` so the asyncio service
(:mod:`repro.service`) and the experiment runners share one scheduler
substrate. This module keeps the experiment-specific half: mapping an
experiment name to its unit-job list (:func:`jobs_for`) and the
prewarm-then-aggregate convenience (:func:`run_experiment`).

Everything previously importable from here still is — the job types,
``execute_job``, ``prewarm``, ``make_pool``, ``default_processes`` are
re-exported — and results are bit-identical to the pre-refactor module:
the execution, installation and locking code is the same code, called
through the engine's job-type registry.

Usage::

    from repro.eval.parallel import jobs_for, prewarm

    prewarm(jobs_for("fig6", 20_000), processes=4)
    figure_6(20_000)          # served entirely from the warmed cache

or, end to end::

    run_experiment("fig6", 20_000, processes=4)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..engine import (
    DramJob,
    Job,
    SampleJob,
    SizeJob,
    SpecJob,
    default_processes,
    execute_job,
    make_pool,
    prewarm,
)
from ..workloads.registry import TABLE_II_WORKLOADS
from ..workloads.spec import FIG15_BENCHMARKS, SPEC_BENCHMARKS
from . import experiments
from .comparison import DEFAULT_INTERVAL, DEFAULT_REQUESTS

__all__ = [
    "DEFAULT_INTERVAL",
    "DEFAULT_REQUESTS",
    "DramJob",
    "JOB_BUILDERS",
    "Job",
    "SampleJob",
    "SizeJob",
    "SpecJob",
    "default_processes",
    "execute_job",
    "jobs_for",
    "make_pool",
    "prewarm",
    "run_experiment",
]

# Kept for the streaming profiler's shard fan-out, which historically
# imported the pool factory under this name.
_make_pool = make_pool


# ---------------------------------------------------------------------------
# Experiment -> job-list mapping
# ---------------------------------------------------------------------------


def _device_sweep(num_requests: int, **_: object) -> List[Job]:
    return [DramJob(name, num_requests) for name in TABLE_II_WORKLOADS]


def _workloads(*names: str) -> Callable[..., List[Job]]:
    def jobs(num_requests: int, **_: object) -> List[Job]:
        return [DramJob(name, num_requests) for name in names]

    return jobs


def _fig13_jobs(
    num_requests: int, intervals: Optional[Sequence[int]] = None, **_: object
) -> List[Job]:
    intervals = experiments.FIG13_INTERVALS if intervals is None else intervals
    return [
        DramJob(name, num_requests, interval=interval, include_stm=False)
        for interval in intervals
        for name in TABLE_II_WORKLOADS
    ]


def _spec_sweep(
    default_benchmarks: Sequence[str],
) -> Callable[..., List[Job]]:
    def jobs(
        num_requests: int, benchmarks: Optional[Sequence[str]] = None, **_: object
    ) -> List[Job]:
        names = default_benchmarks if benchmarks is None else benchmarks
        return [SpecJob(benchmark, num_requests) for benchmark in names]

    return jobs


def _fig17_jobs(
    num_requests: int, benchmarks: Optional[Sequence[str]] = None, **_: object
) -> List[Job]:
    names = SPEC_BENCHMARKS if benchmarks is None else benchmarks
    return [SizeJob(benchmark, num_requests) for benchmark in names]


def _sampling_jobs(
    num_requests: int,
    workloads: Optional[Sequence[str]] = None,
    k: Optional[int] = None,
    sample_seed: Optional[int] = None,
    **_: object,
) -> List[Job]:
    # Resolve the process-wide sampling configuration here so the jobs
    # (and therefore the memo cache keys) carry explicit parameters.
    from ..sample import configured_sample_intervals, configured_sample_seed

    if k is None:
        k = configured_sample_intervals()
    if sample_seed is None:
        sample_seed = configured_sample_seed()
    names = TABLE_II_WORKLOADS if workloads is None else workloads
    return [
        SampleJob(name, num_requests, k=k, sample_seed=sample_seed) for name in names
    ]


JOB_BUILDERS: Dict[str, Callable[..., List[Job]]] = {
    "fig6": _device_sweep,
    "fig7": _device_sweep,
    "fig8": _workloads("trex1"),
    "fig9": _device_sweep,
    "fig10": _workloads("fbc-linear1", "fbc-tiled1"),
    "fig11": _workloads("fbc-linear1", "fbc-tiled1"),
    "fig12": _workloads("fbc-linear1"),
    "fig13": _fig13_jobs,
    "fig14": _spec_sweep(SPEC_BENCHMARKS),
    "fig15": _spec_sweep(tuple(FIG15_BENCHMARKS)),
    "fig16": _spec_sweep(tuple(FIG15_BENCHMARKS)),
    "fig17": _fig17_jobs,
    "sampling": _sampling_jobs,
}


def jobs_for(experiment: str, num_requests: int, **kwargs: object) -> List[Job]:
    """The unit jobs behind one experiment's runner.

    ``kwargs`` mirror the runner's own keyword arguments where they
    change the work to be done (``intervals`` for fig13, ``benchmarks``
    for figs 14-17). Experiments without a parallel decomposition
    (fig2/fig3/table1 and the extension studies are single-simulation
    or trivially cheap) return an empty list.
    """
    builder = JOB_BUILDERS.get(experiment)
    if builder is None:
        return []
    return builder(num_requests, **kwargs)


def run_experiment(
    experiment: str,
    num_requests: int,
    processes: Optional[int] = None,
    **kwargs: object,
):
    """Prewarm an experiment's jobs in parallel, then run its runner."""
    runner = getattr(experiments, _RUNNER_NAMES[experiment])
    prewarm(jobs_for(experiment, num_requests, **kwargs), processes=processes)
    return runner(num_requests, **kwargs)


_RUNNER_NAMES = {
    name: f"figure_{name[3:]}" for name in JOB_BUILDERS if name.startswith("fig")
}
_RUNNER_NAMES["sampling"] = "sampling_fidelity"
