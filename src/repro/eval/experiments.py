"""Experiment runners — one per table/figure of the paper's evaluation.

Each ``figure_*`` / ``table_*`` function regenerates the data behind the
corresponding exhibit and returns it as plain dicts/lists; the
``benchmarks/`` suite prints them as the paper's rows/series. Scale is
parameterized: benches default to reduced request counts (same shape,
minutes not hours); pass larger ``num_requests`` to approach paper scale.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..baselines.hrd import HRDModel
from ..cache.cache import CacheConfig
from ..core.hierarchy import two_level_rs, two_level_ts
from ..core.profiler import build_profile
from ..core.serialization import profile_size_bytes
from ..core.spatial import partition_dynamic, partition_fixed
from ..core.synthesis import synthesize
from ..core.trace import Trace
from ..sim.cache_driver import run_cache_trace
from ..workloads.registry import TABLE_II_DEVICES, TABLE_II_WORKLOADS, make_generator
from ..workloads.spec import FIG15_BENCHMARKS, SPEC_BENCHMARKS
from .comparison import (
    DEFAULT_INTERVAL,
    DEFAULT_REQUESTS,
    baseline_trace,
    dram_comparison,
)
from .metrics import geometric_mean, geomean_percent_error, percent_error

DEVICES = ("CPU", "DPU", "GPU", "VPU")


# ---------------------------------------------------------------------------
# Sec. III motivation: Figs. 2-3 and Table I
# ---------------------------------------------------------------------------


def figure_2(num_requests: int = DEFAULT_REQUESTS, workload: str = "hevc1") -> List[dict]:
    """Requests inside the busiest 4KB region of the first N HEVC1 requests.

    Returns one record per request: arrival order within the region, byte
    offset from the region base, size and operation — the data behind the
    paper's Fig. 2 scatter.
    """
    trace = baseline_trace(workload, num_requests)
    blocks = partition_fixed(trace.requests, 4096)
    busiest = max(blocks, key=len)
    records = []
    for order, request in enumerate(busiest.requests):
        records.append(
            {
                "order": order,
                "offset": request.address - busiest.region.start,
                "size": request.size,
                "operation": str(request.operation),
            }
        )
    return records


def figure_3(
    num_requests: int = DEFAULT_REQUESTS,
    workload: str = "hevc1",
    bin_cycles: int = 500_000,
) -> List[Tuple[int, int]]:
    """Requests per time bin (the burst/idle profile of Fig. 3)."""
    trace = baseline_trace(workload, num_requests)
    counts: Counter = Counter()
    origin = trace.start_time
    for request in trace:
        counts[(request.timestamp - origin) // bin_cycles] += 1
    return sorted(counts.items())


def table_1(num_requests: int = DEFAULT_REQUESTS, workload: str = "hevc1") -> dict:
    """Stride/size sequences of a reused dynamic partition, 1 vs 2 temporal
    partitions — the paper's Table I illustration of hierarchical
    partitioning exposing constant patterns."""
    trace = baseline_trace(workload, num_requests)
    partitions = partition_dynamic(trace.requests)
    # Pick a partition that, like the paper's F, is reused over time.
    candidates = [p for p in partitions if 8 <= len(p) <= 32]
    chosen = max(candidates or partitions, key=lambda p: len(p))
    addresses = [r.address for r in chosen.requests]
    sizes = [r.size for r in chosen.requests]
    strides = [None] + [b - a for a, b in zip(addresses, addresses[1:])]
    half = len(chosen.requests) // 2
    return {
        "partition_size": len(chosen.requests),
        "region": (chosen.region.start, chosen.region.end),
        "one_partition": list(zip(strides, sizes)),
        "two_partitions": [
            list(zip(strides[:half], sizes[:half])),
            [(None, sizes[half])] + list(zip(strides[half + 1 :], sizes[half + 1 :])),
        ],
    }


# ---------------------------------------------------------------------------
# Sec. IV: DRAM validation (Figs. 6-13)
# ---------------------------------------------------------------------------


def _device_runs(num_requests: int, interval: int = 500_000, include_stm: bool = True):
    runs = {}
    for device, names in TABLE_II_DEVICES.items():
        runs[device] = [
            dram_comparison(name, num_requests, interval=interval, include_stm=include_stm)
            for name in names
        ]
    return runs


def figure_6(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Average (geomean) % error per device for DRAM read/write bursts."""
    result = {}
    for device, runs in _device_runs(num_requests).items():
        result[device] = {
            "read_bursts": {
                "mcc": geomean_percent_error(
                    (run.mcc.read_bursts, run.baseline.read_bursts) for run in runs
                ),
                "stm": geomean_percent_error(
                    (run.stm.read_bursts, run.baseline.read_bursts) for run in runs
                ),
            },
            "write_bursts": {
                "mcc": geomean_percent_error(
                    (run.mcc.write_bursts, run.baseline.write_bursts) for run in runs
                ),
                "stm": geomean_percent_error(
                    (run.stm.write_bursts, run.baseline.write_bursts) for run in runs
                ),
            },
        }
    return result


def figure_7(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Average read/write queue length per device for all three series."""
    result = {}
    for device, runs in _device_runs(num_requests).items():
        result[device] = {
            "read_queue": {
                "baseline": geometric_mean(
                    [max(r.baseline.avg_read_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
                "mcc": geometric_mean(
                    [max(r.mcc.avg_read_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
                "stm": geometric_mean(
                    [max(r.stm.avg_read_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
            },
            "write_queue": {
                "baseline": geometric_mean(
                    [max(r.baseline.avg_write_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
                "mcc": geometric_mean(
                    [max(r.mcc.avg_write_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
                "stm": geometric_mean(
                    [max(r.stm.avg_write_queue_length, 1e-3) for r in runs], floor=1e-3
                ),
            },
        }
    return result


def figure_8(
    num_requests: int = DEFAULT_REQUESTS, workload: str = "trex1"
) -> Dict[int, Dict[str, Counter]]:
    """Write-queue-length-seen distribution per channel for T-Rex1."""
    run = dram_comparison(workload, num_requests)
    result = {}
    for channel in range(len(run.baseline.channels)):
        result[channel] = {
            "baseline": run.baseline.channels[channel].write_queue_len_seen,
            "mcc": run.mcc.channels[channel].write_queue_len_seen,
            "stm": run.stm.channels[channel].write_queue_len_seen,
        }
    return result


def figure_9(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Average (geomean) % error per device for read/write row hits."""
    result = {}
    for device, runs in _device_runs(num_requests).items():
        result[device] = {
            "read_row_hits": {
                "mcc": geomean_percent_error(
                    (run.mcc.read_row_hits, run.baseline.read_row_hits) for run in runs
                ),
                "stm": geomean_percent_error(
                    (run.stm.read_row_hits, run.baseline.read_row_hits) for run in runs
                ),
            },
            "write_row_hits": {
                "mcc": geomean_percent_error(
                    (run.mcc.write_row_hits, run.baseline.write_row_hits) for run in runs
                ),
                "stm": geomean_percent_error(
                    (run.stm.write_row_hits, run.baseline.write_row_hits) for run in runs
                ),
            },
        }
    return result


def figure_10(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Row-hit counts for the linear vs tiled DPU frame-buffer traces."""
    result = {}
    for workload in ("fbc-linear1", "fbc-tiled1"):
        run = dram_comparison(workload, num_requests)
        result[workload] = {
            "read_row_hits": {
                "baseline": run.baseline.read_row_hits,
                "mcc": run.mcc.read_row_hits,
                "stm": run.stm.read_row_hits,
            },
            "write_row_hits": {
                "baseline": run.baseline.write_row_hits,
                "mcc": run.mcc.write_row_hits,
                "stm": run.stm.write_row_hits,
            },
        }
    return result


def figure_11(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Average reads per read->write turnaround, per memory channel."""
    result = {}
    for workload in ("fbc-linear1", "fbc-tiled1"):
        run = dram_comparison(workload, num_requests)
        per_channel = {}
        for channel in range(len(run.baseline.channels)):
            per_channel[channel] = {
                "baseline": run.baseline.channels[channel].avg_reads_per_turnaround,
                "mcc": run.mcc.channels[channel].avg_reads_per_turnaround,
                "stm": run.stm.channels[channel].avg_reads_per_turnaround,
            }
        result[workload] = per_channel
    return result


def figure_12(
    num_requests: int = DEFAULT_REQUESTS, workload: str = "fbc-linear1"
) -> Dict[str, dict]:
    """Read/write bursts per bank per channel for FBC-Linear1."""
    run = dram_comparison(workload, num_requests)
    result: Dict[str, dict] = {"read": {}, "write": {}}
    banks = sorted(
        set().union(
            *[
                set(c.per_bank_reads) | set(c.per_bank_writes)
                for stats in (run.baseline, run.mcc, run.stm)
                for c in stats.channels
            ]
        )
    )
    for operation in ("read", "write"):
        for channel in range(len(run.baseline.channels)):
            series = {}
            for label, stats in (("baseline", run.baseline), ("mcc", run.mcc), ("stm", run.stm)):
                counts = (
                    stats.channels[channel].per_bank_reads
                    if operation == "read"
                    else stats.channels[channel].per_bank_writes
                )
                series[label] = {bank: counts.get(bank, 0) for bank in banks}
            result[operation][channel] = series
    return result


FIG13_INTERVALS = (100_000, 250_000, 500_000, 750_000, 1_000_000)


def figure_13(
    num_requests: int = DEFAULT_REQUESTS,
    intervals: Sequence[int] = FIG13_INTERVALS,
) -> Dict[str, List[Tuple[int, float]]]:
    """Average-memory-access-latency error vs temporal partition size."""
    result: Dict[str, List[Tuple[int, float]]] = {device: [] for device in DEVICES}
    for interval in intervals:
        for device, names in TABLE_II_DEVICES.items():
            errors = []
            for name in names:
                run = dram_comparison(name, num_requests, interval=interval, include_stm=False)
                errors.append(
                    percent_error(run.mcc.avg_access_latency, run.baseline.avg_access_latency)
                )
            result[device].append(
                (interval, geometric_mean([max(e, 1e-3) for e in errors], floor=1e-3))
            )
    return result


# ---------------------------------------------------------------------------
# Sec. V: cache validation vs HRD (Figs. 14-17)
# ---------------------------------------------------------------------------

_SPEC_SYNTH_CACHE: Dict[Tuple, Dict[str, Trace]] = {}


def _spec_interval(num_requests: int) -> int:
    """Requests per temporal phase for SPEC traces (paper: 100,000)."""
    return min(100_000, max(num_requests // 5, 1_000))


def spec_synthetics(
    benchmark: str, num_requests: int = DEFAULT_REQUESTS, seed: int = 0
) -> Dict[str, Trace]:
    """Baseline + Mocktails(Dynamic) + Mocktails(4KB) + HRD traces."""
    key = (benchmark, num_requests, seed)
    cached = _SPEC_SYNTH_CACHE.get(key)
    registry = obs.active()
    if cached is not None:
        if registry is not None:
            registry.counter("eval.spec.cached").inc()
        return cached

    if registry is not None:
        registry.counter("eval.spec.computed").inc()
        registry.event("job.start", kind="spec", name=benchmark, requests=num_requests)
    trace = make_generator(benchmark, seed=seed).generate(num_requests)
    interval = _spec_interval(num_requests)
    dynamic_profile = build_profile(trace, two_level_rs(interval, "dynamic"), name=benchmark)
    fixed_profile = build_profile(trace, two_level_rs(interval, "fixed"), name=benchmark)
    result = {
        "baseline": trace,
        "dynamic": synthesize(dynamic_profile, seed=seed + 1),
        "fixed4k": synthesize(fixed_profile, seed=seed + 1),
        "hrd": HRDModel.fit(trace).synthesize(seed=seed + 1),
    }
    _SPEC_SYNTH_CACHE[key] = result
    if registry is not None:
        registry.event("job.finish", kind="spec", name=benchmark)
    return result


SEC5_SERIES = ("baseline", "dynamic", "fixed4k", "hrd")


def figure_14(
    num_requests: int = DEFAULT_REQUESTS,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, dict]:
    """Geomean L1/L2 miss rates for two cache configs, all four series."""
    benchmarks = list(benchmarks) if benchmarks is not None else SPEC_BENCHMARKS
    configs = {
        "16KB 2-way": CacheConfig(16 * 1024, 2),
        "32KB 4-way": CacheConfig(32 * 1024, 4),
    }
    result: Dict[str, dict] = {}
    for label, l1_config in configs.items():
        rates: Dict[str, dict] = {series: {"l1": [], "l2": []} for series in SEC5_SERIES}
        for benchmark in benchmarks:
            traces = spec_synthetics(benchmark, num_requests)
            for series in SEC5_SERIES:
                run = run_cache_trace(traces[series], l1_config)
                rates[series]["l1"].append(max(run.l1_miss_rate, 1e-6))
                rates[series]["l2"].append(max(run.l2_miss_rate, 1e-6))
        result[label] = {
            series: {
                "l1_miss_rate": geometric_mean(rates[series]["l1"], floor=1e-6) * 100,
                "l2_miss_rate": geometric_mean(rates[series]["l2"], floor=1e-6) * 100,
            }
            for series in SEC5_SERIES
        }
    return result


def _associativity_sweep(
    metric: str,
    num_requests: int,
    benchmarks: Sequence[str],
    associativities: Sequence[int],
) -> Dict[str, dict]:
    result: Dict[str, dict] = {}
    for benchmark in benchmarks:
        traces = spec_synthetics(benchmark, num_requests)
        per_assoc: Dict[int, dict] = {}
        for associativity in associativities:
            l1_config = CacheConfig(32 * 1024, associativity)
            values = {}
            for series in ("baseline", "dynamic", "hrd"):
                run = run_cache_trace(traces[series], l1_config)
                if metric == "miss_rate":
                    values[series] = run.l1_miss_rate * 100
                else:
                    values[series] = run.l1.write_backs
            per_assoc[associativity] = values
        result[benchmark] = per_assoc
    return result


def figure_15(
    num_requests: int = DEFAULT_REQUESTS,
    benchmarks: Sequence[str] = tuple(FIG15_BENCHMARKS),
    associativities: Sequence[int] = (2, 4, 8, 16),
) -> Dict[str, dict]:
    """32KB L1 miss rate across associativities for six benchmarks."""
    return _associativity_sweep("miss_rate", num_requests, benchmarks, associativities)


def figure_16(
    num_requests: int = DEFAULT_REQUESTS,
    benchmarks: Sequence[str] = tuple(FIG15_BENCHMARKS),
    associativities: Sequence[int] = (2, 4, 8, 16),
) -> Dict[str, dict]:
    """32KB L1 write-backs across associativities for six benchmarks."""
    return _associativity_sweep("write_backs", num_requests, benchmarks, associativities)


_SPEC_SIZE_CACHE: Dict[Tuple[str, int], dict] = {}


def spec_size_record(benchmark: str, num_requests: int = DEFAULT_REQUESTS) -> dict:
    """On-disk sizes for one benchmark: trace vs dynamic vs 4KB profile."""
    key = (benchmark, num_requests)
    cached = _SPEC_SIZE_CACHE.get(key)
    if cached is not None:
        return cached
    interval = _spec_interval(num_requests)
    trace = make_generator(benchmark).generate(num_requests)
    with tempfile.TemporaryDirectory() as tmp:
        trace_bytes = trace.save_binary(Path(tmp) / f"{benchmark}.mtr.gz")
    dynamic = build_profile(trace, two_level_rs(interval, "dynamic"))
    fixed = build_profile(trace, two_level_rs(interval, "fixed"))
    record = {
        "trace": trace_bytes,
        "dynamic": profile_size_bytes(dynamic),
        "fixed4k": profile_size_bytes(fixed),
    }
    _SPEC_SIZE_CACHE[key] = record
    return record


def figure_17(
    num_requests: int = DEFAULT_REQUESTS,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, dict]:
    """On-disk sizes: trace vs dynamic-profile vs 4KB-profile (bytes)."""
    benchmarks = list(benchmarks) if benchmarks is not None else SPEC_BENCHMARKS
    return {
        benchmark: spec_size_record(benchmark, num_requests) for benchmark in benchmarks
    }


# ---------------------------------------------------------------------------
# Statistical sampling fidelity (repro.sample)
# ---------------------------------------------------------------------------

_SAMPLING_CACHE: Dict[Tuple, dict] = {}


def sampling_report_for(
    name: str,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = 0,
    interval: int = DEFAULT_INTERVAL,
    k: Optional[int] = None,
    sample_seed: int = 0,
) -> dict:
    """Predicted-vs-full sampling error for one workload (cached).

    Runs :func:`repro.sample.sampling_comparison` under the paper's
    Sec. IV methodology (``2L-TS`` hierarchy, synthesis seed
    ``seed + 1``) and returns the report as a plain dict. ``k=None``
    uses the ~10% per-trace default.
    """
    key = (name, num_requests, seed, interval, k, sample_seed)
    cached = _SAMPLING_CACHE.get(key)
    if cached is not None:
        return cached
    from ..sample import sampling_comparison

    trace = baseline_trace(name, num_requests, seed)
    config = two_level_ts(cycles_per_interval=interval)
    report = sampling_comparison(
        trace,
        config,
        k=k,
        seed=sample_seed,
        synthesis_seed=seed + 1,
        name=name,
    )
    record = report.to_dict()
    _SAMPLING_CACHE[key] = record
    return record


def sampling_fidelity(
    num_requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[str]] = None,
    interval: int = DEFAULT_INTERVAL,
    k: Optional[int] = None,
    sample_seed: Optional[int] = None,
) -> Dict[str, dict]:
    """Sampling accuracy report across the Table II workloads.

    For every workload: the sampled estimate's percent error against
    the full pipeline on the Fig. 6/13/14 metrics, the plan's declared
    error bound, and whether the measurement honours it. ``k`` and
    ``sample_seed`` default to the process-wide configuration
    (``MOCKTAILS_SAMPLE_INTERVALS`` / ``MOCKTAILS_SAMPLE_SEED``, e.g.
    via the ``--sample-intervals`` CLI flag), then to the ~10%
    per-trace default.
    """
    from ..sample import configured_sample_intervals, configured_sample_seed

    if k is None:
        k = configured_sample_intervals()
    if sample_seed is None:
        sample_seed = configured_sample_seed()
    names = TABLE_II_WORKLOADS if workloads is None else list(workloads)
    return {
        name: sampling_report_for(
            name,
            num_requests,
            interval=interval,
            k=k,
            sample_seed=sample_seed,
        )
        for name in names
    }


# ---------------------------------------------------------------------------
# Extension studies (paper Sec. VI)
# ---------------------------------------------------------------------------


def extension_chargecache(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """ChargeCache benefit per device class, driven by Mocktails profiles."""
    from ..dram.chargecache import ChargeCacheConfig
    from ..dram.config import MemoryConfig
    from ..sim.driver import simulate_trace

    workloads = {"CPU": "crypto1", "DPU": "fbc-linear1", "GPU": "trex1", "VPU": "hevc1"}
    result = {}
    for device, name in workloads.items():
        trace = baseline_trace(name, num_requests)
        synthetic = synthesize(build_profile(trace, two_level_ts()), seed=1)
        plain = simulate_trace(synthetic, MemoryConfig())
        boosted = simulate_trace(
            synthetic, MemoryConfig(charge_cache=ChargeCacheConfig())
        )
        result[device] = {
            "baseline_latency": plain.avg_access_latency,
            "chargecache_latency": boosted.avg_access_latency,
            "saving_percent": (
                (plain.avg_access_latency - boosted.avg_access_latency)
                / plain.avg_access_latency * 100.0
                if plain.avg_access_latency
                else 0.0
            ),
        }
    return result


def extension_soc(num_requests: int = DEFAULT_REQUESTS) -> Dict[str, dict]:
    """Four concurrent device profiles sharing one memory system."""
    from ..sim.multi_device import run_soc

    workloads = {"cpu": "crypto1", "dpu": "fbc-linear1", "gpu": "trex1", "vpu": "hevc1"}
    devices = {
        device: build_profile(baseline_trace(name, num_requests), two_level_ts())
        for device, name in workloads.items()
    }
    outcome = run_soc(devices, seed=2)
    shares = outcome.bandwidth_share()
    return {
        device: {
            "requests": stats.requests,
            "avg_latency": stats.avg_access_latency,
            "bandwidth_share": shares[device],
            "backpressure": stats.backpressure_delay,
        }
        for device, stats in outcome.devices.items()
    }
