"""Evaluation harness: per-figure experiment runners and error metrics.

For multi-core machines, :mod:`repro.eval.parallel` fans the independent
simulation jobs behind each figure out across worker processes (see
``python -m repro.eval run <exp> --jobs N``).
"""

from .comparison import WorkloadRun, baseline_trace, clear_cache, dram_comparison
from .metrics import (
    absolute_error,
    arithmetic_mean,
    geomean_percent_error,
    geometric_mean,
    percent_error,
    summary_errors,
)
from .reporting import format_table, print_table

__all__ = [
    "WorkloadRun",
    "absolute_error",
    "arithmetic_mean",
    "baseline_trace",
    "clear_cache",
    "dram_comparison",
    "format_table",
    "geomean_percent_error",
    "geometric_mean",
    "percent_error",
    "print_table",
    "summary_errors",
]
