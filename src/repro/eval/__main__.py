"""Command-line experiment runner: ``python -m repro.eval``.

Examples::

    python -m repro.eval list
    python -m repro.eval run fig9 --requests 50000
    python -m repro.eval quick fig6 --metrics-out run.json
    python -m repro.eval all --requests 20000 --trace-events events.jsonl
    python -m repro.eval run fig6 --cache-dir /tmp/repro-cache
    python -m repro.eval cache stats

Cross-run memoization is **on by default** (under ``~/.cache/repro``;
see :mod:`repro.store`): deterministic simulation payloads computed by
one invocation are reused by every later one, so a warm ``run fig6`` is
bit-identical to a cold one but orders of magnitude faster. Opt out
with ``--no-cache``; manage the cache with the ``cache`` subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .. import obs, store
from . import experiments
from .reporting import format_table


def _print_fig2(records) -> None:
    rows = [[r["order"], r["offset"], r["size"], r["operation"]] for r in records[:40]]
    print(format_table(["order", "offset", "size", "op"], rows))


def _print_fig3(bins) -> None:
    print(format_table(["bin", "requests"], bins[:60]))


def _print_table1(data) -> None:
    rows = [
        [i, s if s is not None else "N/A", size]
        for i, (s, size) in enumerate(data["one_partition"])
    ]
    print(format_table(["#", "stride", "size"], rows))


def _print_error_figure(result, metrics) -> None:
    rows = []
    for device, data in result.items():
        row = [device]
        for metric in metrics:
            row.extend([data[metric]["mcc"], data[metric]["stm"]])
        rows.append(row)
    headers = ["device"]
    for metric in metrics:
        headers.extend([f"{metric} McC", f"{metric} STM"])
    print(format_table(headers, rows))


def _print_fig7(result) -> None:
    rows = [
        [
            device,
            data["read_queue"]["baseline"], data["read_queue"]["mcc"],
            data["read_queue"]["stm"],
            data["write_queue"]["baseline"], data["write_queue"]["mcc"],
            data["write_queue"]["stm"],
        ]
        for device, data in result.items()
    ]
    print(format_table(
        ["device", "rdQ base", "rdQ McC", "rdQ STM",
         "wrQ base", "wrQ McC", "wrQ STM"], rows))


def _print_fig8(result) -> None:
    for channel, series in sorted(result.items()):
        buckets = sorted(set().union(*[set(h) for h in series.values()]))
        rows = [
            [b, series["baseline"].get(b, 0), series["mcc"].get(b, 0),
             series["stm"].get(b, 0)]
            for b in buckets
        ]
        print(f"channel {channel}:")
        print(format_table(["queue len", "baseline", "McC", "STM"], rows))


def _print_fig10(result) -> None:
    rows = []
    for workload, metrics in result.items():
        for metric, series in metrics.items():
            rows.append([workload, metric, series["baseline"], series["mcc"],
                         series["stm"]])
    print(format_table(["workload", "metric", "baseline", "McC", "STM"], rows))


def _print_fig11(result) -> None:
    rows = []
    for workload, channels in result.items():
        for channel, series in sorted(channels.items()):
            rows.append([workload, channel, series["baseline"], series["mcc"],
                         series["stm"]])
    print(format_table(["workload", "channel", "baseline", "McC", "STM"], rows))


def _print_fig12(result) -> None:
    for operation in ("read", "write"):
        print(f"{operation} bursts:")
        rows = []
        for channel, series in sorted(result[operation].items()):
            for bank in sorted(series["baseline"]):
                rows.append([channel, bank, series["baseline"][bank],
                             series["mcc"][bank], series["stm"][bank]])
        print(format_table(["channel", "bank", "baseline", "McC", "STM"], rows))


def _print_fig13(result) -> None:
    rows = []
    for device, series in result.items():
        for interval, error in series:
            rows.append([device, interval, error])
    print(format_table(["device", "interval", "latency err %"], rows))


def _print_fig14(result) -> None:
    rows = []
    for config, series in result.items():
        for name, data in series.items():
            rows.append([config, name, data["l1_miss_rate"], data["l2_miss_rate"]])
    print(format_table(["config", "series", "L1 miss %", "L2 miss %"], rows))


def _print_assoc(result) -> None:
    rows = []
    for name, per_assoc in result.items():
        for associativity, series in sorted(per_assoc.items()):
            rows.append([name, associativity, series["baseline"],
                         series["dynamic"], series["hrd"]])
    print(format_table(["benchmark", "assoc", "baseline", "Mocktails", "HRD"], rows))


def _print_fig17(result) -> None:
    rows = [
        [name, sizes["trace"], sizes["dynamic"], sizes["fixed4k"],
         sizes["dynamic"] / sizes["trace"]]
        for name, sizes in result.items()
    ]
    print(format_table(["benchmark", "trace B", "dynamic B", "4KB B", "ratio"], rows))


def _print_sampling(result) -> None:
    rows = []
    for name, data in result.items():
        rows.append([
            name,
            data["interval_count"],
            data["k"],
            "yes" if data["exact"] else "no",
            f"{data['geomean_error_percent']:.2f}",
            f"{data['error_bound_percent']:.2f}",
            "yes" if data["within_bound"] else "NO",
        ])
    print(format_table(
        ["workload", "intervals", "K", "exact", "geomean err %",
         "bound %", "within"], rows))


EXPERIMENTS = {
    "fig2": (experiments.figure_2, _print_fig2),
    "fig3": (experiments.figure_3, _print_fig3),
    "table1": (experiments.table_1, _print_table1),
    "fig6": (experiments.figure_6,
             lambda r: _print_error_figure(r, ("read_bursts", "write_bursts"))),
    "fig7": (experiments.figure_7, _print_fig7),
    "fig8": (experiments.figure_8, _print_fig8),
    "fig9": (experiments.figure_9,
             lambda r: _print_error_figure(r, ("read_row_hits", "write_row_hits"))),
    "fig10": (experiments.figure_10, _print_fig10),
    "fig11": (experiments.figure_11, _print_fig11),
    "fig12": (experiments.figure_12, _print_fig12),
    "fig13": (experiments.figure_13, _print_fig13),
    "fig14": (experiments.figure_14, _print_fig14),
    "fig15": (experiments.figure_15, _print_assoc),
    "fig16": (experiments.figure_16, _print_assoc),
    "fig17": (experiments.figure_17, _print_fig17),
    "ext-chargecache": (experiments.extension_chargecache, None),
    "ext-soc": (experiments.extension_soc, None),
    "sampling": (experiments.sampling_fidelity, _print_sampling),
}


def _print_generic(result) -> None:
    """Fallback printer: nested dicts as a flat table."""
    rows = []
    headers = ["key"]
    for key, data in result.items():
        if isinstance(data, dict):
            headers = ["key"] + list(data.keys())
            rows.append([key] + list(data.values()))
        else:
            rows.append([key, data])
    print(format_table(headers, rows))


def run_experiment(name: str, num_requests: int, jobs: int = 1):
    runner, printer = EXPERIMENTS[name]
    registry = obs.active()
    start = time.perf_counter()

    def execute():
        # Prewarm fans out across workers and/or pulls memoized payloads
        # from the cross-run store; with one job and no store it would
        # just run the same work the runner runs, so it is skipped.
        if jobs > 1 or store.active_memo() is not None:
            from .parallel import jobs_for, prewarm

            prewarm(jobs_for(name, num_requests), processes=jobs)
        return runner(num_requests)

    if registry is not None:
        with registry.phase(name):
            result = execute()
    else:
        result = execute()
    elapsed = time.perf_counter() - start
    workers = f", {jobs} jobs" if jobs > 1 else ""
    print(f"\n=== {name} ({num_requests:,} requests/trace, {elapsed:.1f}s{workers}) ===")
    (printer or _print_generic)(result)
    return result


def _json_sanitize(value):
    """Experiment results as JSON-dumpable data (dict keys become strings)."""
    if isinstance(value, dict):
        return {str(key): _json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


def run_cache_command(args) -> int:
    """The ``cache`` subcommand: stats / verify / gc / clear."""
    memo = store.ExperimentMemo(args.cache_dir or store.default_cache_dir())
    if args.cache_command == "stats":
        stats = memo.stats()
        print(f"cache dir:  {stats['root']}")
        print(f"entries:    {stats['entries']}")
        print(f"blobs:      {stats['blobs']}")
        print(f"size:       {_format_bytes(stats['bytes'])}")
        return 0
    if args.cache_command == "verify":
        report = memo.verify(evict_corrupt=not args.keep_corrupt)
        print(f"checked {report['checked']} blobs")
        for digest in report["corrupt"]:
            action = "kept" if args.keep_corrupt else "evicted (will recompute)"
            print(f"corrupt blob {digest[:16]}...: {action}")
        for key in report["dangling"]:
            action = "kept" if args.keep_corrupt else "dropped"
            print(f"dangling key {key[:16]}...: {action}")
        if not report["corrupt"] and not report["dangling"]:
            print("cache is clean")
        return 1 if args.keep_corrupt and (report["corrupt"] or report["dangling"]) else 0
    if args.cache_command == "gc":
        evicted = memo.gc(args.max_bytes)
        stats = memo.stats()
        print(
            f"evicted {len(evicted)} blobs; "
            f"{stats['blobs']} remain ({_format_bytes(stats['bytes'])})"
        )
        return 0
    if args.cache_command == "clear":
        removed = memo.clear()
        print(f"removed {removed} blobs from {memo.root}")
        return 0
    raise AssertionError(f"unknown cache command: {args.cache_command}")  # pragma: no cover


def run_stream_command(args) -> int:
    """The ``stream`` subcommand: out-of-core profile build + replay."""
    from ..core.hierarchy import micro_macro, two_level_rs, two_level_ts
    from ..stream import DEFAULT_BLOCK_REQUESTS, iter_blocks

    config = {
        "2lts": two_level_ts,
        "2lrs": two_level_rs,
        "micro-macro": micro_macro,
    }[args.config]()
    block_requests = (
        args.block_requests if args.block_requests is not None else DEFAULT_BLOCK_REQUESTS
    )
    if block_requests <= 0:
        parser_error = f"--block-requests must be positive, got {block_requests}"
        print(parser_error, file=sys.stderr)
        return 2

    start = time.perf_counter()
    if args.sample_intervals is not None:
        # Statistical sampling: fingerprint every outer interval in one
        # streaming pass, then fit only the K representatives (second
        # pass). Peak memory stays O(interval).
        from ..sample import sampled_profile_from_file

        profile, plan = sampled_profile_from_file(
            args.trace,
            config,
            k=args.sample_intervals,
            seed=args.sample_seed or 0,
            block_requests=block_requests,
            backend=args.backend,
        )
        elapsed = time.perf_counter() - start
        total_requests = sum(leaf.count for leaf in profile)
        mode = (
            "exact (K covers every interval)"
            if plan.exact
            else f"error bound {plan.error_bound_percent:.1f}%"
        )
        print(
            f"sampled {len(plan.representatives)} of {plan.interval_count} "
            f"intervals ({mode}); profiled {total_requests:,} requests into "
            f"{len(profile)} leaves in {elapsed:.1f}s "
            f"(blocks of {block_requests:,})"
        )
    elif args.jobs > 1:
        from ..stream import build_profile_sharded

        profile = build_profile_sharded(
            args.trace,
            config,
            jobs=args.jobs,
            block_requests=block_requests,
            backend=args.backend,
        )
        elapsed = time.perf_counter() - start
        total_requests = sum(leaf.count for leaf in profile)
        print(
            f"profiled {total_requests:,} requests into {len(profile)} leaves "
            f"in {elapsed:.1f}s (blocks of {block_requests:,}, {args.jobs} jobs)"
        )
    else:
        from ..stream import build_profile_streaming

        profile = build_profile_streaming(
            iter_blocks(args.trace, block_requests), config, backend=args.backend
        )
        elapsed = time.perf_counter() - start
        total_requests = sum(leaf.count for leaf in profile)
        print(
            f"profiled {total_requests:,} requests into {len(profile)} leaves "
            f"in {elapsed:.1f}s (blocks of {block_requests:,})"
        )

    if args.profile_out:
        from ..core.serialization import save_profile

        size = save_profile(profile, args.profile_out)
        print(f"wrote profile to {args.profile_out} ({_format_bytes(size)})")

    if args.replay == "cache":
        from ..sim.cache_driver import run_cache_blocks

        start = time.perf_counter()
        result = run_cache_blocks(
            iter_blocks(args.trace, block_requests), backend=args.backend
        )
        elapsed = time.perf_counter() - start
        print(
            f"cache replay ({elapsed:.1f}s): "
            f"L1 miss rate {result.l1_miss_rate:.4f}, "
            f"L2 miss rate {result.l2_miss_rate:.4f}"
        )
    elif args.replay == "dram":
        from ..sim.driver import simulate_blocks

        start = time.perf_counter()
        stats = simulate_blocks(iter_blocks(args.trace, block_requests))
        elapsed = time.perf_counter() - start
        print(
            f"dram replay ({elapsed:.1f}s): "
            f"{stats.latency_count:,} accesses, "
            f"avg latency {stats.avg_access_latency:.1f} cycles"
        )
    return 0


def run_serve_command(args) -> int:
    """The ``serve`` subcommand: the asyncio job-queue service."""
    import asyncio
    import signal

    from ..engine import Scheduler
    from ..lint import sanitize as lint_sanitize
    from ..service import JobServer

    port = args.port
    if port is None and args.unix is None:
        port = 0  # TCP on an ephemeral port; the real one is printed
    lock_checker = None
    if args.lock_order_check:
        # Before the scheduler exists, so every FileLock acquisition of
        # this process lands in the observed acquisition graph.
        lock_checker = lint_sanitize.enable_lock_order_check()
    stall_monitor = None
    if args.stall_threshold_ms is not None:
        stall_monitor = lint_sanitize.LoopStallMonitor(
            threshold=args.stall_threshold_ms / 1000.0
        )
    memo = None
    if not args.no_cache:
        memo = store.configure(args.cache_dir)
    scheduler = Scheduler(
        workers=args.jobs, queue_limit=args.queue_limit, backend=args.pool
    )
    server = JobServer(
        scheduler,
        host=args.host,
        port=port,
        unix_path=args.unix,
        client_quota=args.client_quota,
    )

    async def _serve() -> None:
        await server.start()
        for endpoint in server.endpoints():
            print(f"listening on {endpoint}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:  # pragma: no cover - non-unix loops
                pass
        if stall_monitor is not None:
            stall_monitor.start(loop)
        try:
            await server.run()
        finally:
            if stall_monitor is not None:
                stall_monitor.stop()

    sanitizer_failed = False
    try:
        asyncio.run(_serve())
    finally:
        scheduler.close(cancel_pending=True)
        if memo is not None:
            print(
                f"cache: {memo.hits} hits, {memo.misses} misses ({memo.root})",
                flush=True,
            )
            store.deactivate()
        if lock_checker is not None:
            report = lock_checker.report()
            print(
                f"lock-order: {report['acquisitions']} acquisitions, "
                f"{report['edges']} edges, "
                f"{len(report['violations'])} violations",
                flush=True,
            )
            for violation in report["violations"]:
                print(f"lock-order violation: {violation}", flush=True)
                sanitizer_failed = True
            lint_sanitize.disable_lock_order_check()
        if stall_monitor is not None:
            report = stall_monitor.report()
            print(
                f"loop-stalls: {len(report['stalls'])} stalls over "
                f"{report['ticks']} ticks (max lag "
                f"{report['max_lag_seconds'] * 1000.0:.1f} ms, threshold "
                f"{report['threshold_seconds'] * 1000.0:.1f} ms)",
                flush=True,
            )
            for lag in report["stalls"]:
                print(f"loop stall: {lag * 1000.0:.1f} ms", flush=True)
                sanitizer_failed = True
    print("server stopped", flush=True)
    return 1 if sanitizer_failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--requests", type=int, default=20_000,
                     help="requests per trace (default 20,000)")
    quick = sub.add_parser(
        "quick", help="run one experiment at a reduced quick scale"
    )
    quick.add_argument("experiment", choices=sorted(EXPERIMENTS))
    quick.add_argument("--requests", type=int, default=2_000,
                       help="requests per trace (default 2,000)")
    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--requests", type=int, default=20_000)
    for command in (run, quick, everything):
        command.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the simulation fan-out "
                 "(default 1 = serial; results are identical)")
        command.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write a run manifest (host, seeds, scale, phase wall "
                 "times, all metric values) as JSON to PATH")
        command.add_argument(
            "--trace-events", metavar="PATH", default=None,
            help="stream structured events (job starts/finishes, DRAM "
                 "enqueue/issue/drain, worker heartbeats) as JSONL to PATH")
        command.add_argument(
            "--json-out", metavar="PATH", default=None,
            help="write the experiment results (the same data the tables "
                 "print) as JSON to PATH")
        command.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="cross-run result cache directory (default ~/.cache/repro "
                 "or $REPRO_CACHE_DIR; see 'cache' subcommand)")
        command.add_argument(
            "--no-cache", action="store_true",
            help="disable the cross-run result cache for this invocation")
        command.add_argument(
            "--sanitize", action="store_true",
            help="validate every simulated request against the trace "
                 "invariants (monotonic timestamps, legal addresses and "
                 "operations); fails fast on the first violation")
        command.add_argument(
            "--backend", choices=("auto", "scalar", "columnar"), default=None,
            help="trace data path: 'scalar' walks per-request objects, "
                 "'columnar' uses vectorized column passes, 'auto' (the "
                 "default) picks columnar when numpy is available; "
                 "results are bit-identical either way")
        command.add_argument(
            "--stream", action="store_true",
            help="build every profile through the out-of-core streaming "
                 "path (repro.stream): O(block) peak memory, results "
                 "bit-identical to the in-memory build")
        command.add_argument(
            "--block-requests", type=int, default=None, metavar="N",
            help="streaming block size in requests (default 8,192; "
                 "implies nothing without --stream)")
        command.add_argument(
            "--sample-intervals", type=int, default=None, metavar="K",
            help="statistical sampling: cluster each trace's outer "
                 "temporal intervals and simulate only K weighted "
                 "representatives (repro.sample); K >= the interval "
                 "count reproduces the full pipeline byte-identically. "
                 "Used by the 'sampling' experiment")
        command.add_argument(
            "--sample-seed", type=int, default=None, metavar="SEED",
            help="clustering seed for --sample-intervals (default 0; "
                 "results are deterministic for a fixed seed)")

    stream = sub.add_parser(
        "stream",
        help="profile (and optionally replay) a trace file out-of-core",
        description="Stream a .mtr/.csv trace (plain or gz) through the "
                    "chunked profile build without ever loading it whole; "
                    "optionally replay it through the cache or DRAM "
                    "simulators the same way.",
    )
    stream.add_argument("trace", help="trace file (.mtr/.csv, optionally .gz)")
    stream.add_argument(
        "--config", choices=("2lts", "2lrs", "micro-macro"), default="2lts",
        help="hierarchy configuration (default 2lts, the paper's "
             "two-level temporal/spatial split)")
    stream.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="save the resulting profile (gzip JSON) to PATH")
    stream.add_argument(
        "--replay", choices=("none", "cache", "dram"), default="none",
        help="additionally replay the trace block-by-block through the "
             "L1/L2 cache or the crossbar+DRAM simulator")
    stream.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sharded map-reduce build "
             "(default 1 = sequential; results are identical)")
    stream.add_argument(
        "--block-requests", type=int, default=None, metavar="N",
        help="requests per streamed block (default 8,192)")
    stream.add_argument(
        "--backend", choices=("auto", "scalar", "columnar"), default=None,
        help="trace data path (see 'run --backend')")
    stream.add_argument(
        "--sample-intervals", type=int, default=None, metavar="K",
        help="profile only K representative outer intervals (two "
             "streaming passes: fingerprint, then fit; K >= the "
             "interval count is byte-identical to the full build)")
    stream.add_argument(
        "--sample-seed", type=int, default=None, metavar="SEED",
        help="clustering seed for --sample-intervals (default 0)")

    serve = sub.add_parser(
        "serve",
        help="run the job-queue service (profile/synthesize/evaluate/sample "
             "jobs over newline-delimited JSON)",
        description="Serve the shared job engine over TCP and/or a unix "
                    "socket. Clients submit jobs as one JSON object per "
                    "line and read acks, optional progress events and one "
                    "terminal result or error per submission; identical "
                    "in-flight jobs are computed exactly once and results "
                    "are memoized in the cross-run cache. See DESIGN.md "
                    "('Service & engine') for the wire protocol.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="TCP port; 0 picks an ephemeral port (the default unless "
             "--unix is given, in which case TCP is off unless --port is "
             "set). The bound endpoint is printed as 'listening on ...'")
    serve.add_argument(
        "--unix", metavar="PATH", default=None,
        help="additionally (or instead) listen on a unix socket at PATH")
    serve.add_argument(
        "--jobs", type=int, default=None,
        help="engine worker count (default: min(cpu count, 8))")
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded engine queue size; submissions beyond it are "
             "rejected with code 'queue-full' (default 64)")
    serve.add_argument(
        "--client-quota", type=int, default=16,
        help="max unfinished submissions per connection; beyond it "
             "submissions are rejected with 'quota-exceeded' (default 16)")
    serve.add_argument(
        "--pool", choices=("process", "thread"), default="process",
        help="execute jobs in worker processes (default; crash-isolated) "
             "or in-process threads (cheaper for tiny jobs and tests)")
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cross-run result cache directory (default ~/.cache/repro "
             "or $REPRO_CACHE_DIR)")
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the cross-run result cache for this server")
    serve.add_argument(
        "--lock-order-check", action="store_true",
        help="run the lock-order sanitizer: record every observed lock "
             "acquisition, report ordering cycles at shutdown and exit "
             "nonzero on any violation (observation-only; results are "
             "byte-identical)")
    serve.add_argument(
        "--stall-threshold-ms", type=float, default=None, metavar="MS",
        help="run the event-loop stall monitor: report any callback that "
             "delays the loop heartbeat by more than MS milliseconds and "
             "exit nonzero if stalls occurred (observation-only)")

    cache = sub.add_parser(
        "cache", help="inspect and maintain the cross-run result cache"
    )
    cache.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default ~/.cache/repro or $REPRO_CACHE_DIR)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry/blob counts and total size")
    verify = cache_sub.add_parser(
        "verify", help="re-hash every blob, evicting corrupt entries"
    )
    verify.add_argument(
        "--keep-corrupt", action="store_true",
        help="report corruption without evicting (exit 1 if any found)")
    gc = cache_sub.add_parser("gc", help="LRU-evict blobs past a size budget")
    gc.add_argument(
        "--max-bytes", type=int, default=2 * 1024**3,
        help="byte budget to shrink the store to (default 2 GiB)")
    clear = cache_sub.add_parser("clear", help="remove every cached entry")
    for cache_command in (stats, verify, gc, clear):
        # SUPPRESS: a trailing `cache stats --cache-dir X` wins, but when
        # omitted it does not clobber a prefix `cache --cache-dir X stats`.
        cache_command.add_argument(
            "--cache-dir", metavar="DIR", default=argparse.SUPPRESS,
            help="cache directory (default ~/.cache/repro or $REPRO_CACHE_DIR)")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "cache":
        return run_cache_command(args)
    if args.command == "stream":
        return run_stream_command(args)
    if args.command == "serve":
        return run_serve_command(args)

    if args.backend is not None:
        # set_backend records the choice in MOCKTAILS_BACKEND, so
        # parallel worker processes inherit it.
        from ..core.columnar import set_backend

        set_backend(args.backend)

    stream_env = None
    if args.stream or args.block_requests is not None:
        # set_stream_mode records the choice in MOCKTAILS_STREAM /
        # MOCKTAILS_STREAM_BLOCK_REQUESTS, so workers inherit it; the
        # prior values are restored on the way out.
        import os

        from ..stream import _BLOCK_ENV, _STREAM_ENV, set_stream_mode

        stream_env = {
            key: os.environ.get(key) for key in (_STREAM_ENV, _BLOCK_ENV)
        }
        set_stream_mode(args.stream, args.block_requests)

    sample_env = None
    if args.sample_intervals is not None:
        # set_sampling records the choice in MOCKTAILS_SAMPLE_INTERVALS /
        # MOCKTAILS_SAMPLE_SEED, so parallel workers inherit it and
        # repro.store.memo folds it into every cache key; the prior
        # values are restored on the way out.
        import os

        from ..sample import _K_ENV, _SEED_ENV, set_sampling

        sample_env = {key: os.environ.get(key) for key in (_K_ENV, _SEED_ENV)}
        set_sampling(args.sample_intervals, args.sample_seed)

    registry = None
    if args.metrics_out or args.trace_events:
        sink = obs.JsonlEventSink(args.trace_events) if args.trace_events else None
        registry = obs.enable(sink)

    memo = None
    if not args.no_cache:
        memo = store.configure(args.cache_dir)

    if args.sanitize:
        from ..lint import sanitize as lint_sanitize

        lint_sanitize.enable()

    try:
        names = [args.experiment] if args.command in ("run", "quick") else list(EXPERIMENTS)
        results = {}
        for name in names:
            results[name] = run_experiment(name, args.requests, jobs=args.jobs)
        if memo is not None:
            print(
                f"\ncache: {memo.hits} hits, {memo.misses} misses"
                + (f", {memo.corrupt} corrupt (recomputed)" if memo.corrupt else "")
                + f" ({memo.root})"
            )
        if args.json_out:
            from ..store.atomic import atomic_write_text

            payload = json.dumps(_json_sanitize(results), indent=2, sort_keys=True)
            atomic_write_text(args.json_out, payload + "\n")
            print(f"wrote results to {args.json_out}")
        if registry is not None and args.metrics_out:
            manifest = obs.build_manifest(
                registry,
                command=" ".join(["python -m repro.eval"] + list(argv or sys.argv[1:])),
                scale={"requests": args.requests, "jobs": args.jobs},
                seeds={"base": 0, "synthesis": 1},
                extra={"experiments": names},
            )
            obs.write_manifest(args.metrics_out, manifest)
            print(f"wrote run manifest to {args.metrics_out}")
        if args.trace_events:
            print(f"wrote {registry.sink.emitted if registry.sink else 0:,} "
                  f"events to {args.trace_events}")
    finally:
        if stream_env is not None:
            import os

            for key, value in stream_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        if sample_env is not None:
            import os

            for key, value in sample_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        if args.sanitize:
            from ..lint import sanitize as lint_sanitize

            lint_sanitize.disable()
        if memo is not None:
            store.deactivate()
        if registry is not None:
            obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
