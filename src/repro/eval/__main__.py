"""Command-line experiment runner: ``python -m repro.eval``.

Examples::

    python -m repro.eval list
    python -m repro.eval run fig9 --requests 50000
    python -m repro.eval quick fig6 --metrics-out run.json
    python -m repro.eval all --requests 20000 --trace-events events.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time

from .. import obs
from . import experiments
from .reporting import format_table


def _print_fig2(records) -> None:
    rows = [[r["order"], r["offset"], r["size"], r["operation"]] for r in records[:40]]
    print(format_table(["order", "offset", "size", "op"], rows))


def _print_fig3(bins) -> None:
    print(format_table(["bin", "requests"], bins[:60]))


def _print_table1(data) -> None:
    rows = [
        [i, s if s is not None else "N/A", size]
        for i, (s, size) in enumerate(data["one_partition"])
    ]
    print(format_table(["#", "stride", "size"], rows))


def _print_error_figure(result, metrics) -> None:
    rows = []
    for device, data in result.items():
        row = [device]
        for metric in metrics:
            row.extend([data[metric]["mcc"], data[metric]["stm"]])
        rows.append(row)
    headers = ["device"]
    for metric in metrics:
        headers.extend([f"{metric} McC", f"{metric} STM"])
    print(format_table(headers, rows))


def _print_fig7(result) -> None:
    rows = [
        [
            device,
            data["read_queue"]["baseline"], data["read_queue"]["mcc"],
            data["read_queue"]["stm"],
            data["write_queue"]["baseline"], data["write_queue"]["mcc"],
            data["write_queue"]["stm"],
        ]
        for device, data in result.items()
    ]
    print(format_table(
        ["device", "rdQ base", "rdQ McC", "rdQ STM",
         "wrQ base", "wrQ McC", "wrQ STM"], rows))


def _print_fig8(result) -> None:
    for channel, series in sorted(result.items()):
        buckets = sorted(set().union(*[set(h) for h in series.values()]))
        rows = [
            [b, series["baseline"].get(b, 0), series["mcc"].get(b, 0),
             series["stm"].get(b, 0)]
            for b in buckets
        ]
        print(f"channel {channel}:")
        print(format_table(["queue len", "baseline", "McC", "STM"], rows))


def _print_fig10(result) -> None:
    rows = []
    for workload, metrics in result.items():
        for metric, series in metrics.items():
            rows.append([workload, metric, series["baseline"], series["mcc"],
                         series["stm"]])
    print(format_table(["workload", "metric", "baseline", "McC", "STM"], rows))


def _print_fig11(result) -> None:
    rows = []
    for workload, channels in result.items():
        for channel, series in sorted(channels.items()):
            rows.append([workload, channel, series["baseline"], series["mcc"],
                         series["stm"]])
    print(format_table(["workload", "channel", "baseline", "McC", "STM"], rows))


def _print_fig12(result) -> None:
    for operation in ("read", "write"):
        print(f"{operation} bursts:")
        rows = []
        for channel, series in sorted(result[operation].items()):
            for bank in sorted(series["baseline"]):
                rows.append([channel, bank, series["baseline"][bank],
                             series["mcc"][bank], series["stm"][bank]])
        print(format_table(["channel", "bank", "baseline", "McC", "STM"], rows))


def _print_fig13(result) -> None:
    rows = []
    for device, series in result.items():
        for interval, error in series:
            rows.append([device, interval, error])
    print(format_table(["device", "interval", "latency err %"], rows))


def _print_fig14(result) -> None:
    rows = []
    for config, series in result.items():
        for name, data in series.items():
            rows.append([config, name, data["l1_miss_rate"], data["l2_miss_rate"]])
    print(format_table(["config", "series", "L1 miss %", "L2 miss %"], rows))


def _print_assoc(result) -> None:
    rows = []
    for name, per_assoc in result.items():
        for associativity, series in sorted(per_assoc.items()):
            rows.append([name, associativity, series["baseline"],
                         series["dynamic"], series["hrd"]])
    print(format_table(["benchmark", "assoc", "baseline", "Mocktails", "HRD"], rows))


def _print_fig17(result) -> None:
    rows = [
        [name, sizes["trace"], sizes["dynamic"], sizes["fixed4k"],
         sizes["dynamic"] / sizes["trace"]]
        for name, sizes in result.items()
    ]
    print(format_table(["benchmark", "trace B", "dynamic B", "4KB B", "ratio"], rows))


EXPERIMENTS = {
    "fig2": (experiments.figure_2, _print_fig2),
    "fig3": (experiments.figure_3, _print_fig3),
    "table1": (experiments.table_1, _print_table1),
    "fig6": (experiments.figure_6,
             lambda r: _print_error_figure(r, ("read_bursts", "write_bursts"))),
    "fig7": (experiments.figure_7, _print_fig7),
    "fig8": (experiments.figure_8, _print_fig8),
    "fig9": (experiments.figure_9,
             lambda r: _print_error_figure(r, ("read_row_hits", "write_row_hits"))),
    "fig10": (experiments.figure_10, _print_fig10),
    "fig11": (experiments.figure_11, _print_fig11),
    "fig12": (experiments.figure_12, _print_fig12),
    "fig13": (experiments.figure_13, _print_fig13),
    "fig14": (experiments.figure_14, _print_fig14),
    "fig15": (experiments.figure_15, _print_assoc),
    "fig16": (experiments.figure_16, _print_assoc),
    "fig17": (experiments.figure_17, _print_fig17),
    "ext-chargecache": (experiments.extension_chargecache, None),
    "ext-soc": (experiments.extension_soc, None),
}


def _print_generic(result) -> None:
    """Fallback printer: nested dicts as a flat table."""
    rows = []
    headers = ["key"]
    for key, data in result.items():
        if isinstance(data, dict):
            headers = ["key"] + list(data.keys())
            rows.append([key] + list(data.values()))
        else:
            rows.append([key, data])
    print(format_table(headers, rows))


def run_experiment(name: str, num_requests: int, jobs: int = 1) -> None:
    runner, printer = EXPERIMENTS[name]
    registry = obs.active()
    start = time.time()

    def execute():
        if jobs > 1:
            from .parallel import jobs_for, prewarm

            prewarm(jobs_for(name, num_requests), processes=jobs)
        return runner(num_requests)

    if registry is not None:
        with registry.phase(name):
            result = execute()
    else:
        result = execute()
    elapsed = time.time() - start
    workers = f", {jobs} jobs" if jobs > 1 else ""
    print(f"\n=== {name} ({num_requests:,} requests/trace, {elapsed:.1f}s{workers}) ===")
    (printer or _print_generic)(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--requests", type=int, default=20_000,
                     help="requests per trace (default 20,000)")
    quick = sub.add_parser(
        "quick", help="run one experiment at a reduced quick scale"
    )
    quick.add_argument("experiment", choices=sorted(EXPERIMENTS))
    quick.add_argument("--requests", type=int, default=2_000,
                       help="requests per trace (default 2,000)")
    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--requests", type=int, default=20_000)
    for command in (run, quick, everything):
        command.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the simulation fan-out "
                 "(default 1 = serial; results are identical)")
        command.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write a run manifest (host, seeds, scale, phase wall "
                 "times, all metric values) as JSON to PATH")
        command.add_argument(
            "--trace-events", metavar="PATH", default=None,
            help="stream structured events (job starts/finishes, DRAM "
                 "enqueue/issue/drain, worker heartbeats) as JSONL to PATH")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    registry = None
    if args.metrics_out or args.trace_events:
        sink = obs.JsonlEventSink(args.trace_events) if args.trace_events else None
        registry = obs.enable(sink)

    try:
        names = [args.experiment] if args.command in ("run", "quick") else list(EXPERIMENTS)
        for name in names:
            run_experiment(name, args.requests, jobs=args.jobs)
        if registry is not None and args.metrics_out:
            manifest = obs.build_manifest(
                registry,
                command=" ".join(["python -m repro.eval"] + list(argv or sys.argv[1:])),
                scale={"requests": args.requests, "jobs": args.jobs},
                seeds={"base": 0, "synthesis": 1},
                extra={"experiments": names},
            )
            obs.write_manifest(args.metrics_out, manifest)
            print(f"wrote run manifest to {args.metrics_out}")
        if args.trace_events:
            print(f"wrote {registry.sink.emitted if registry.sink else 0:,} "
                  f"events to {args.trace_events}")
    finally:
        if registry is not None:
            obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
