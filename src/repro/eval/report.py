"""Markdown report generation for full reproduction runs.

``python -m repro.eval all`` prints tables to stdout;
:func:`write_report` runs the same experiments and renders a
self-contained markdown report (the machinery behind refreshing
EXPERIMENTS.md at a new scale).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from . import experiments
from ..store.atomic import atomic_write_text
from .metrics import percent_error


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(render(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def _section_fig6(num_requests: int) -> str:
    result = experiments.figure_6(num_requests)
    rows = [
        [
            device,
            data["read_bursts"]["mcc"], data["read_bursts"]["stm"],
            data["write_bursts"]["mcc"], data["write_bursts"]["stm"],
        ]
        for device, data in result.items()
    ]
    return "## Fig. 6 — DRAM burst error (%)\n\n" + _md_table(
        ["device", "rd McC", "rd STM", "wr McC", "wr STM"], rows
    )


def _section_fig9(num_requests: int) -> str:
    result = experiments.figure_9(num_requests)
    rows = [
        [
            device,
            data["read_row_hits"]["mcc"], data["read_row_hits"]["stm"],
            data["write_row_hits"]["mcc"], data["write_row_hits"]["stm"],
        ]
        for device, data in result.items()
    ]
    return "## Fig. 9 — row-hit error (%)\n\n" + _md_table(
        ["device", "rd McC", "rd STM", "wr McC", "wr STM"], rows
    )


def _section_fig10(num_requests: int) -> str:
    result = experiments.figure_10(num_requests)
    rows = []
    for workload, metrics in result.items():
        for metric, series in metrics.items():
            rows.append(
                [
                    workload, metric, series["baseline"], series["mcc"],
                    percent_error(series["mcc"], series["baseline"]),
                ]
            )
    return "## Fig. 10 — DPU row hits\n\n" + _md_table(
        ["workload", "metric", "baseline", "McC", "err %"], rows
    )


def _section_fig13(num_requests: int) -> str:
    result = experiments.figure_13(num_requests)
    rows = [
        [device, interval, error]
        for device, series in result.items()
        for interval, error in series
    ]
    return "## Fig. 13 — latency error vs interval (%)\n\n" + _md_table(
        ["device", "interval", "error %"], rows
    )


def _section_fig14(num_requests: int, benchmarks) -> str:
    result = experiments.figure_14(num_requests, benchmarks=benchmarks)
    rows = [
        [config, series, data["l1_miss_rate"], data["l2_miss_rate"]]
        for config, per_series in result.items()
        for series, data in per_series.items()
    ]
    return "## Fig. 14 — cache miss rates (geomean %)\n\n" + _md_table(
        ["config", "series", "L1 miss %", "L2 miss %"], rows
    )


def _section_fig17(num_requests: int, benchmarks) -> str:
    result = experiments.figure_17(num_requests, benchmarks=benchmarks)
    rows = [
        [name, sizes["trace"], sizes["dynamic"], sizes["dynamic"] / sizes["trace"]]
        for name, sizes in result.items()
    ]
    total_trace = sum(sizes["trace"] for sizes in result.values())
    total_dynamic = sum(sizes["dynamic"] for sizes in result.values())
    footer = (
        f"\n\nOverall profile/trace size ratio: "
        f"{total_dynamic / total_trace:.2f}"
    )
    return (
        "## Fig. 17 — trace vs profile sizes (bytes)\n\n"
        + _md_table(["benchmark", "trace", "dynamic profile", "ratio"], rows)
        + footer
    )


def build_report(
    num_requests: int = 10_000,
    spec_benchmarks: Optional[Sequence[str]] = None,
) -> str:
    """Run the headline experiments and render a markdown report."""
    if spec_benchmarks is None:
        spec_benchmarks = ["gobmk", "hmmer", "libquantum", "milc"]
    started = time.perf_counter()
    sections = [
        f"# Mocktails reproduction report\n\n"
        f"Scale: {num_requests:,} requests per trace.",
        _section_fig6(num_requests),
        _section_fig9(num_requests),
        _section_fig10(num_requests),
        _section_fig13(num_requests),
        _section_fig14(num_requests, spec_benchmarks),
        _section_fig17(num_requests, spec_benchmarks),
    ]
    sections.append(f"_Generated in {time.perf_counter() - started:.1f}s._")
    return "\n\n".join(sections) + "\n"


def write_report(
    path: Union[str, Path],
    num_requests: int = 10_000,
    spec_benchmarks: Optional[Sequence[str]] = None,
) -> Path:
    """Write :func:`build_report` output to ``path``; returns the path."""
    path = Path(path)
    atomic_write_text(path, build_report(num_requests, spec_benchmarks))
    return path
