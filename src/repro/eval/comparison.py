"""Cached baseline-vs-synthesis comparison runs.

Most of the paper's DRAM figures (6–12) read different metrics off the
*same* three simulations per workload: the baseline trace, the
``2L-TS (McC)`` synthesis and the ``2L-TS (STM)`` synthesis. This module
runs each combination once and caches the results so every figure
re-uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import obs
from ..baselines.stm import stm_leaf_factory
from ..core.hierarchy import two_level_ts
from ..core.profiler import build_profile
from ..core.trace import Trace
from ..dram.config import MemoryConfig
from ..dram.stats import MemorySystemStats
from ..sim.driver import simulate_trace
from ..workloads.registry import device_of, make_generator

DEFAULT_REQUESTS = 20_000
DEFAULT_INTERVAL = 500_000


@dataclass
class WorkloadRun:
    """Baseline + synthetic DRAM statistics for one workload."""

    name: str
    device: Optional[str]
    num_requests: int
    interval: int
    baseline: MemorySystemStats
    mcc: MemorySystemStats
    stm: Optional[MemorySystemStats]


_trace_cache: Dict[Tuple, Trace] = {}
_run_cache: Dict[Tuple, WorkloadRun] = {}


def clear_cache() -> None:
    _trace_cache.clear()
    _run_cache.clear()


def baseline_trace(name: str, num_requests: int = DEFAULT_REQUESTS, seed: int = 0) -> Trace:
    """The (cached) baseline trace for a workload."""
    key = (name, num_requests, seed)
    if key not in _trace_cache:
        _trace_cache[key] = make_generator(name, seed=seed).generate(num_requests)
    return _trace_cache[key]


def dram_comparison(
    name: str,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = 0,
    interval: int = DEFAULT_INTERVAL,
    include_stm: bool = True,
    config: Optional[MemoryConfig] = None,
) -> WorkloadRun:
    """Run (or fetch) the baseline/McC/STM trio for one workload.

    Follows the paper's Sec. IV methodology: profiles use the ``2L-TS``
    hierarchy (``interval`` cycles temporally, then dynamic spatial
    partitioning); synthesis is Option A (a synthetic trace replayed on
    the same platform as the baseline).
    """
    key = (name, num_requests, seed, interval, include_stm, config)
    cached = _run_cache.get(key)
    registry = obs.active()
    if cached is not None:
        if registry is not None:
            registry.counter("eval.runs.cached").inc()
        return cached

    from ..core.synthesis import synthesize

    if registry is not None:
        registry.counter("eval.runs.computed").inc()
        registry.event(
            "job.start", kind="dram", name=name, requests=num_requests, interval=interval
        )
    trace = baseline_trace(name, num_requests, seed)
    hierarchy = two_level_ts(cycles_per_interval=interval)

    baseline_stats = simulate_trace(trace, config)

    # Phase attribution: profile building + synthetic-trace generation is
    # "synthesis"; simulate_trace attributes its own time to
    # replay.crossbar / replay.dram. Timing never changes statistics.
    with obs.phase("replay.synthesis"):
        mcc_profile = build_profile(trace, hierarchy, name=name)
        mcc_trace = synthesize(mcc_profile, seed=seed + 1)
    mcc_stats = simulate_trace(mcc_trace, config)

    stm_stats = None
    if include_stm:
        with obs.phase("replay.synthesis"):
            stm_profile = build_profile(
                trace, hierarchy, leaf_factory=stm_leaf_factory, name=name
            )
            stm_trace = synthesize(stm_profile, seed=seed + 1)
        stm_stats = simulate_trace(stm_trace, config)

    run = WorkloadRun(
        name=name,
        device=device_of(name),
        num_requests=num_requests,
        interval=interval,
        baseline=baseline_stats,
        mcc=mcc_stats,
        stm=stm_stats,
    )
    _run_cache[key] = run
    if registry is not None:
        registry.event(
            "job.finish",
            kind="dram",
            name=name,
            read_bursts=run.baseline.read_bursts,
            write_bursts=run.baseline.write_bursts,
        )
    return run
