"""Error metrics used by the paper's evaluation.

The per-device figures report the *geometric mean* of per-trace percent
errors (e.g. Fig. 6: "geometric mean error of read and write bursts for
each SoC device").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

#: Default floor applied to geometric-mean inputs. Percent errors of
#: exactly 0 would otherwise zero out (or, with a tiny epsilon like the
#: old 1e-9, collapse) the whole geomean: geomean([0, 50]) with a 1e-9
#: floor is ~0.0002, wildly misrepresenting a series that contains a 50%
#: error. 0.01 (i.e. one hundredth of a percent for the error figures)
#: keeps perfect entries from dominating while still rewarding them.
GEOMEAN_FLOOR = 0.01


def percent_error(measured: float, reference: float) -> float:
    """Absolute percent error of ``measured`` against ``reference``.

    A zero reference with a zero measurement is 0% error; a zero
    reference with a non-zero measurement is reported as 100%.
    """
    if reference == 0:
        return 0.0 if measured == 0 else 100.0
    return abs(measured - reference) / abs(reference) * 100.0


def geometric_mean(values: Sequence[float], floor: float = GEOMEAN_FLOOR) -> float:
    """Geometric mean with zero values floored at ``floor``.

    The floor must be positive (a true zero has no geometric mean);
    callers whose inputs are already clamped can pass their clamp value
    to make the flooring explicit and inert.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if floor <= 0:
        raise ValueError(f"floor must be positive, got {floor}")
    if any(value < 0 for value in values):
        raise ValueError("geometric mean requires non-negative values")
    log_sum = sum(math.log(max(value, floor)) for value in values)
    return math.exp(log_sum / len(values))


def geomean_percent_error(pairs: Iterable[tuple], floor: float = GEOMEAN_FLOOR) -> float:
    """Geometric mean of percent errors over (measured, reference) pairs."""
    errors = [percent_error(measured, reference) for measured, reference in pairs]
    return geometric_mean(errors, floor=floor)


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def absolute_error(measured: float, reference: float) -> float:
    return abs(measured - reference)


def summary_errors(measured: Dict[str, float], reference: Dict[str, float]) -> Dict[str, float]:
    """Percent error for every metric key shared by two summaries."""
    return {
        key: percent_error(measured[key], reference[key])
        for key in reference
        if key in measured
    }
