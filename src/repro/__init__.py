"""repro: a full reproduction of Mocktails (Badr et al., ISCA 2020).

Mocktails synthetically recreates the spatio-temporal memory access
behaviour of heterogeneous SoC compute devices (CPU, GPU, DPU, VPU) from
black-box statistical profiles, so proprietary workloads can be studied
without distributing proprietary traces.

Quickstart::

    from repro import build_profile, synthesize, workload_trace

    trace = workload_trace("hevc1", num_requests=50_000)   # baseline
    profile = build_profile(trace)                          # industry side
    synthetic = synthesize(profile, seed=42)                # academia side

Subpackages:
    core          Partitioning, McC models, profiles, synthesis.
    baselines     STM and HRD prior-art models.
    dram          Event-driven DRAM memory-controller simulator.
    interconnect  Crossbar with backpressure.
    cache         Set-associative write-back cache hierarchy.
    workloads     Synthetic stand-ins for the paper's proprietary traces.
    sim           Drivers wiring traces into the simulators.
    eval          Experiment runners for every paper figure/table.
"""

from .core import (
    AddressRange,
    ColumnarTrace,
    CorruptArtifactError,
    FeedbackSynthesizer,
    HierarchyConfig,
    LeafModel,
    MarkovChain,
    McCModel,
    MemoryRequest,
    Operation,
    Profile,
    SpatialLayer,
    TemporalLayer,
    Trace,
    active_backend,
    build_leaves,
    build_profile,
    load_profile,
    partition_dynamic,
    partition_fixed,
    save_profile,
    set_backend,
    synthesize,
    synthesize_stream,
    two_level_rs,
    two_level_ts,
)
from .workloads import available_workloads, workload_trace

__version__ = "1.5.0"

__all__ = [
    "AddressRange",
    "ColumnarTrace",
    "CorruptArtifactError",
    "FeedbackSynthesizer",
    "HierarchyConfig",
    "LeafModel",
    "MarkovChain",
    "McCModel",
    "MemoryRequest",
    "Operation",
    "Profile",
    "SpatialLayer",
    "TemporalLayer",
    "Trace",
    "active_backend",
    "available_workloads",
    "build_leaves",
    "build_profile",
    "load_profile",
    "partition_dynamic",
    "partition_fixed",
    "save_profile",
    "set_backend",
    "synthesize",
    "synthesize_stream",
    "two_level_rs",
    "two_level_ts",
    "workload_trace",
    "__version__",
]
