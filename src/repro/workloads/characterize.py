"""Workload characterization: the quantities behind Table II and Figs. 2-3.

Summarizes a trace the way the paper characterizes its proprietary
inputs: volume, read/write mix, footprint, request-size mix, burstiness
and stride regularity. Used by ``repro.tools.trace characterize`` and by
tests that pin each generator's personality.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.trace import Trace


@dataclass
class WorkloadCharacter:
    """A compact numerical fingerprint of a trace."""

    requests: int
    read_fraction: float
    total_bytes: int
    duration_cycles: int
    footprint_bytes: int  # unique 64B blocks touched * 64
    size_histogram: Dict[int, int] = field(default_factory=dict)
    burstiness: float = 0.0  # CoV^2 of inter-arrival times (1 = Poisson)
    stride_entropy_bits: float = 0.0
    dominant_stride: int = 0
    dominant_stride_fraction: float = 0.0
    region_count_4k: int = 0  # distinct 4KB regions touched

    @property
    def mean_request_rate(self) -> float:
        """Requests per kilocycle."""
        if not self.duration_cycles:
            return float(self.requests)
        return self.requests / self.duration_cycles * 1000.0


def characterize(trace: Trace) -> WorkloadCharacter:
    """Compute the fingerprint of a trace."""
    if not len(trace):
        return WorkloadCharacter(0, 0.0, 0, 0, 0)

    addresses = [r.address for r in trace]
    timestamps = [r.timestamp for r in trace]

    blocks = {address // 64 for address in addresses}
    regions = {address // 4096 for address in addresses}

    gaps: List[int] = [b - a for a, b in zip(timestamps, timestamps[1:])]
    burstiness = 0.0
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap > 0:
            variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
            burstiness = variance / (mean_gap * mean_gap)

    strides = Counter(b - a for a, b in zip(addresses, addresses[1:]))
    stride_total = sum(strides.values())
    entropy = 0.0
    dominant_stride, dominant_count = 0, 0
    if stride_total:
        for stride, count in strides.items():
            probability = count / stride_total
            entropy -= probability * math.log2(probability)
            if count > dominant_count:
                dominant_stride, dominant_count = stride, count

    return WorkloadCharacter(
        requests=len(trace),
        read_fraction=trace.read_count() / len(trace),
        total_bytes=trace.total_bytes(),
        duration_cycles=trace.duration,
        footprint_bytes=len(blocks) * 64,
        size_histogram=dict(Counter(r.size for r in trace)),
        burstiness=burstiness,
        stride_entropy_bits=entropy,
        dominant_stride=dominant_stride,
        dominant_stride_fraction=(dominant_count / stride_total if stride_total else 0.0),
        region_count_4k=len(regions),
    )


def format_character(character: WorkloadCharacter) -> str:
    """Human-readable rendering, mirroring the Table II style."""
    sizes = ", ".join(
        f"{size}B:{count}" for size, count in sorted(character.size_histogram.items())
    )
    lines = [
        f"requests:          {character.requests:,}",
        f"read fraction:     {character.read_fraction:.1%}",
        f"bytes:             {character.total_bytes:,}",
        f"duration:          {character.duration_cycles:,} cycles",
        f"request rate:      {character.mean_request_rate:.2f} per kilocycle",
        f"footprint:         {character.footprint_bytes:,} bytes "
        f"({character.region_count_4k:,} x 4KB regions)",
        f"sizes:             {sizes}",
        f"burstiness (CoV²): {character.burstiness:,.1f}",
        f"stride entropy:    {character.stride_entropy_bits:.2f} bits "
        f"(dominant {character.dominant_stride} at "
        f"{character.dominant_stride_fraction:.1%})",
    ]
    return "\n".join(lines)
