"""Workload characterization: the quantities behind Table II and Figs. 2-3.

Summarizes a trace the way the paper characterizes its proprietary
inputs: volume, read/write mix, footprint, request-size mix, burstiness
and stride regularity. Used by ``repro.tools.trace characterize``, by
tests that pin each generator's personality, and — per interval — by the
sampling fingerprints of :mod:`repro.sample`.

:func:`characterize` accepts either trace backend
(:class:`~repro.core.trace.Trace` or
:class:`~repro.core.columnar.ColumnarTrace`) and never materializes
per-request objects for columnar input. When numpy is available the
heavy reductions run vectorized; the stdlib path is kept **bit-identical**
by design:

* every float statistic is derived from *exact integer* sufficient
  statistics (sums, sums of squares, unique counts) followed by the same
  sequence of float operations in both paths — burstiness is the exact
  identity ``(n*Σg² - (Σg)²) / (Σg)²`` with a single correctly-rounded
  division;
* stride entropy and the dominant stride iterate unique strides in
  ascending stride order in both paths (``np.unique`` is sorted; the
  stdlib path sorts its ``Counter``), with ties on the dominant count
  resolved to the smallest stride;
* the size histogram is keyed in ascending size order in both paths.

Degenerate-case convention: a trace whose requests all share one
timestamp has ``duration_cycles == 0`` and therefore **no measurable
request rate** — :attr:`WorkloadCharacter.mean_request_rate` reports
``0.0`` (not the request count) and :func:`format_character` renders the
rate as ``n/a``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..core.columnar import ColumnarTrace, as_columnar, numpy_or_none
from ..core.trace import Trace

#: Largest magnitude a vectorized int64 reduction may reach before the
#: exact-integer paths fall back to Python arbitrary precision.
_INT64_MAX = 2**63 - 1


@dataclass
class WorkloadCharacter:
    """A compact numerical fingerprint of a trace."""

    requests: int
    read_fraction: float
    total_bytes: int
    duration_cycles: int
    footprint_bytes: int  # unique 64B blocks touched * 64
    size_histogram: Dict[int, int] = field(default_factory=dict)
    burstiness: float = 0.0  # CoV^2 of inter-arrival times (1 = Poisson)
    stride_entropy_bits: float = 0.0
    dominant_stride: int = 0
    dominant_stride_fraction: float = 0.0
    region_count_4k: int = 0  # distinct 4KB regions touched

    @property
    def mean_request_rate(self) -> float:
        """Requests per kilocycle.

        Degenerate convention: with ``duration_cycles == 0`` (a
        single-timestamp trace) there is no time base to divide by, so
        the rate is reported as ``0.0``; :func:`format_character`
        renders it as ``n/a`` rather than a number.
        """
        if not self.duration_cycles:
            return 0.0
        return self.requests / self.duration_cycles * 1000.0


def _burstiness(gap_count: int, gap_sum: int, gap_sq_sum: int) -> float:
    """CoV² of inter-arrival gaps from exact integer sufficient stats.

    ``variance/mean² == (n*Σg² - (Σg)²) / (Σg)²`` exactly; the single
    float division at the end is correctly rounded, so any two callers
    passing the same integers get the same bits.
    """
    if gap_count <= 0 or gap_sum <= 0:
        return 0.0
    return (gap_count * gap_sq_sum - gap_sum * gap_sum) / (gap_sum * gap_sum)


def _stride_stats(
    pairs: Sequence[Tuple[int, int]], total: int
) -> Tuple[float, int, float]:
    """Entropy (bits), dominant stride and its fraction.

    ``pairs`` must be (stride, count) in ascending stride order — both
    backends canonicalize to that order, so the float accumulation below
    runs in an identical sequence. Dominant-count ties resolve to the
    smallest stride (the first seen in ascending order).
    """
    if not total:
        return 0.0, 0, 0.0
    entropy = 0.0
    dominant_stride, dominant_count = 0, 0
    for stride, count in pairs:
        probability = count / total
        entropy -= probability * math.log2(probability)
        if count > dominant_count:
            dominant_stride, dominant_count = stride, count
    return entropy, dominant_stride, dominant_count / total


def _columns_as_lists(trace: Union[Trace, ColumnarTrace]):
    """(timestamps, addresses, sizes, ops) as plain Python-int lists."""
    if isinstance(trace, ColumnarTrace):
        lists = trace.to_lists()
        return lists["timestamps"], lists["addresses"], lists["sizes"], lists["ops"]
    timestamps: List[int] = []
    addresses: List[int] = []
    sizes: List[int] = []
    ops: List[int] = []
    for request in trace:
        timestamps.append(request.timestamp)
        addresses.append(request.address)
        sizes.append(request.size)
        ops.append(int(request.operation))
    return timestamps, addresses, sizes, ops


def _characterize_reference(trace: Union[Trace, ColumnarTrace]) -> WorkloadCharacter:
    """The stdlib path: exact integer reductions, canonical orderings."""
    timestamps, addresses, sizes, ops = _columns_as_lists(trace)
    requests = len(timestamps)

    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    burstiness = _burstiness(len(gaps), sum(gaps), sum(g * g for g in gaps))

    stride_pairs = sorted(Counter(b - a for a, b in zip(addresses, addresses[1:])).items())
    entropy, dominant_stride, dominant_fraction = _stride_stats(
        stride_pairs, requests - 1
    )

    return WorkloadCharacter(
        requests=requests,
        read_fraction=(requests - sum(ops)) / requests,
        total_bytes=sum(sizes),
        duration_cycles=max(timestamps) - min(timestamps),
        footprint_bytes=len({address // 64 for address in addresses}) * 64,
        size_histogram=dict(sorted(Counter(sizes).items())),
        burstiness=burstiness,
        stride_entropy_bits=entropy,
        dominant_stride=dominant_stride,
        dominant_stride_fraction=dominant_fraction,
        region_count_4k=len({address // 4096 for address in addresses}),
    )


def _exact_diff_sums(np, diffs) -> Tuple[int, int]:
    """(Σd, Σd²) of an int64 diff column as exact Python ints.

    Vectorized when the conservative magnitude bound ``n*max|d|`` /
    ``n*max|d|²`` fits int64; otherwise falls back to Python-int
    accumulation (arbitrary precision) so the result is always exact.
    """
    count = len(diffs)
    if not count:
        return 0, 0
    max_abs = int(np.abs(diffs).max())
    if count * max_abs <= _INT64_MAX and count * max_abs * max_abs <= _INT64_MAX:
        return int(diffs.sum()), int((diffs * diffs).sum())
    values = diffs.tolist()
    return sum(values), sum(value * value for value in values)


def _characterize_vectorized(np, columns: ColumnarTrace):
    """The numpy path; returns ``None`` when int64 casts would overflow."""
    timestamps = columns.timestamps
    addresses = columns.addresses
    sizes = columns.sizes
    requests = len(columns)
    if int(timestamps.max()) > _INT64_MAX or int(addresses.max()) > _INT64_MAX:
        return None  # diff columns would not fit int64: take the exact path
    max_size = int(sizes.max())
    if requests * max_size > 2**64 - 1:
        return None  # byte total could overflow the uint64 accumulator

    gaps = np.diff(timestamps.astype(np.int64))
    gap_sum, gap_sq_sum = _exact_diff_sums(np, gaps)
    burstiness = _burstiness(len(gaps), gap_sum, gap_sq_sum)

    strides = np.diff(addresses.astype(np.int64))
    if len(strides):
        unique_strides, stride_counts = np.unique(strides, return_counts=True)
        stride_pairs = list(zip(unique_strides.tolist(), stride_counts.tolist()))
    else:
        stride_pairs = []
    entropy, dominant_stride, dominant_fraction = _stride_stats(
        stride_pairs, requests - 1
    )

    unique_sizes, size_counts = np.unique(sizes, return_counts=True)

    return WorkloadCharacter(
        requests=requests,
        read_fraction=(requests - int(columns.ops.sum())) / requests,
        total_bytes=int(np.sum(sizes, dtype=np.uint64)),
        duration_cycles=int(timestamps.max()) - int(timestamps.min()),
        footprint_bytes=int(len(np.unique(addresses // 64))) * 64,
        size_histogram={
            int(size): int(count)
            for size, count in zip(unique_sizes.tolist(), size_counts.tolist())
        },
        burstiness=burstiness,
        stride_entropy_bits=entropy,
        dominant_stride=int(dominant_stride),
        dominant_stride_fraction=dominant_fraction,
        region_count_4k=int(len(np.unique(addresses // 4096))),
    )


def characterize(trace: Union[Trace, ColumnarTrace]) -> WorkloadCharacter:
    """Compute the fingerprint of a trace (either backend, same bits)."""
    if not len(trace):
        return WorkloadCharacter(0, 0.0, 0, 0, 0)
    np = numpy_or_none()
    if np is not None:
        result = _characterize_vectorized(np, as_columnar(trace))
        if result is not None:
            return result
    return _characterize_reference(trace)


def format_character(character: WorkloadCharacter) -> str:
    """Human-readable rendering, mirroring the Table II style."""
    sizes = ", ".join(
        f"{size}B:{count}" for size, count in sorted(character.size_histogram.items())
    )
    rate = (
        f"{character.mean_request_rate:.2f} per kilocycle"
        if character.duration_cycles
        else "n/a (zero-cycle duration)"
    )
    lines = [
        f"requests:          {character.requests:,}",
        f"read fraction:     {character.read_fraction:.1%}",
        f"bytes:             {character.total_bytes:,}",
        f"duration:          {character.duration_cycles:,} cycles",
        f"request rate:      {rate}",
        f"footprint:         {character.footprint_bytes:,} bytes "
        f"({character.region_count_4k:,} x 4KB regions)",
        f"sizes:             {sizes}",
        f"burstiness (CoV²): {character.burstiness:,.1f}",
        f"stride entropy:    {character.stride_entropy_bits:.2f} bits "
        f"(dominant {character.dominant_stride} at "
        f"{character.dominant_stride_fraction:.1%})",
    ]
    return "\n".join(lines)
