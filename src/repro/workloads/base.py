"""Workload generator infrastructure.

The paper validates Mocktails on proprietary RTL-emulation traces
(Table II). Those traces cannot be redistributed — which is the paper's
whole point — so this package provides parametric generators that
recreate each device's *documented* access structure (see DESIGN.md,
substitutions). Every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from ..core.request import MemoryRequest, Operation
from ..core.trace import Trace


class TraceBuilder:
    """Accumulates requests while advancing a cycle clock.

    Generators interleave several logical streams; the builder keeps the
    global clock and guarantees the resulting trace is time-sorted.
    """

    def __init__(self, start_time: int = 0):
        self.clock = start_time
        self._requests: List[MemoryRequest] = []

    def __len__(self) -> int:
        return len(self._requests)

    def emit(self, address: int, operation: Operation, size: int, gap: int = 1) -> None:
        """Append a request ``gap`` cycles after the previous one."""
        if gap < 0:
            raise ValueError("gap must be non-negative")
        self.clock += gap
        self._requests.append(MemoryRequest(self.clock, address, operation, size))

    def idle(self, cycles: int) -> None:
        """Advance the clock without emitting (burst separation)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.clock += cycles

    def build(self) -> Trace:
        trace = Trace(self._requests)
        if not trace.is_sorted():  # pragma: no cover - builder invariant
            raise RuntimeError("TraceBuilder produced an unsorted trace")
        return trace


class WorkloadGenerator:
    """Base class for device workload models.

    Subclasses set ``device`` (CPU/DPU/GPU/VPU) and ``description`` and
    implement :meth:`generate`.
    """

    name: str = "abstract"
    device: str = "abstract"
    description: str = ""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(self, num_requests: int) -> Trace:
        raise NotImplementedError

    def _rng(self, salt: int = 0) -> random.Random:
        # crc32 rather than hash(): string hashing is randomized per
        # process (PYTHONHASHSEED), and generators must produce identical
        # traces everywhere — including parallel worker processes.
        name_hash = zlib.crc32(self.name.encode("utf-8"))
        return random.Random(name_hash ^ self.seed ^ (salt << 16))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"


def align(address: int, granularity: int) -> int:
    return (address // granularity) * granularity
