"""Workload generator infrastructure.

The paper validates Mocktails on proprietary RTL-emulation traces
(Table II). Those traces cannot be redistributed — which is the paper's
whole point — so this package provides parametric generators that
recreate each device's *documented* access structure (see DESIGN.md,
substitutions). Every generator is deterministic given its seed.

Generation is columnar internally: :class:`TraceBuilder` accumulates
four plain columns (timestamps/addresses/ops/sizes) instead of one
request object per emit. :meth:`TraceBuilder.build` still materializes a
:class:`Trace` — the historical contract — while
:meth:`TraceBuilder.build_columnar` hands the columns to a
:class:`~repro.core.columnar.ColumnarTrace` without ever constructing
request objects. :meth:`WorkloadGenerator.generate_columnar` and
:meth:`WorkloadGenerator.generate_blocks` expose the same switch at the
generator level: identical RNG streams, identical requests, different
container. Column blocks from ``generate_blocks`` stream straight into
the columnar profiler and the batched cache/DRAM replay without holding
per-request objects anywhere.
"""

from __future__ import annotations

import contextlib
import random
import zlib
from typing import Iterator, List, Optional, Union

from ..core.columnar import ColumnarTrace
from ..core.request import MemoryRequest, Operation
from ..core.trace import Trace


class TraceBuilder:
    """Accumulates requests while advancing a cycle clock.

    Generators interleave several logical streams; the builder keeps the
    global clock and guarantees the resulting trace is time-sorted.
    Requests are stored as columns; validation happens at emit time with
    the same errors :class:`MemoryRequest` raises, so switching the
    output container cannot change which traces are rejected.
    """

    #: When true, :meth:`build` returns a ColumnarTrace instead of a
    #: Trace. Class-wide so :meth:`WorkloadGenerator.generate_columnar`
    #: can reroute existing generators without touching their code.
    _columnar_build = False

    def __init__(self, start_time: int = 0):
        self.clock = start_time
        self._timestamps: List[int] = []
        self._addresses: List[int] = []
        self._ops: List[int] = []
        self._sizes: List[int] = []

    def __len__(self) -> int:
        return len(self._timestamps)

    def emit(self, address: int, operation: Operation, size: int, gap: int = 1) -> None:
        """Append a request ``gap`` cycles after the previous one."""
        if gap < 0:
            raise ValueError("gap must be non-negative")
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self.clock += gap
        if self.clock < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.clock}")
        self._timestamps.append(self.clock)
        self._addresses.append(address)
        self._ops.append(int(operation))
        self._sizes.append(size)

    def emit_many(
        self,
        addresses,
        operations,
        sizes,
        gaps=None,
    ) -> None:
        """Append a whole column block of requests in one call.

        ``operations`` may be a single :class:`Operation` applied to the
        block or a per-request sequence; ``gaps`` defaults to 1 cycle
        between consecutive requests. Equivalent to calling :meth:`emit`
        per element — same clock advancement, same validation errors.
        """
        count = len(addresses)
        if isinstance(operations, (Operation, int)):
            operations = [operations] * count
        if gaps is None:
            gaps = [1] * count
        if not (len(operations) == len(sizes) == len(gaps) == count):
            raise ValueError(
                "emit_many columns must have equal lengths, got "
                f"addresses={count} operations={len(operations)} "
                f"sizes={len(sizes)} gaps={len(gaps)}"
            )
        for address, operation, size, gap in zip(addresses, operations, sizes, gaps):
            self.emit(address, operation, size, gap=gap)

    def idle(self, cycles: int) -> None:
        """Advance the clock without emitting (burst separation)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.clock += cycles

    def build_columnar(self) -> ColumnarTrace:
        """The accumulated requests as columns (no request objects)."""
        trace = ColumnarTrace(self._timestamps, self._addresses, self._sizes, self._ops)
        if not trace.is_sorted():  # pragma: no cover - builder invariant
            raise RuntimeError("TraceBuilder produced an unsorted trace")
        return trace

    def build(self) -> Union[Trace, ColumnarTrace]:
        """The accumulated requests, normally as a :class:`Trace`.

        Inside :meth:`WorkloadGenerator.generate_columnar` the result is
        a :class:`ColumnarTrace` instead (same requests, same order).
        """
        if TraceBuilder._columnar_build:
            return self.build_columnar()
        trace = Trace(
            MemoryRequest(timestamp, address, Operation(op), size)
            for timestamp, address, op, size in zip(
                self._timestamps, self._addresses, self._ops, self._sizes
            )
        )
        if not trace.is_sorted():  # pragma: no cover - builder invariant
            raise RuntimeError("TraceBuilder produced an unsorted trace")
        return trace

    @classmethod
    @contextlib.contextmanager
    def columnar_output(cls):
        """Scope within which :meth:`build` returns column traces."""
        previous = cls._columnar_build
        cls._columnar_build = True
        try:
            yield
        finally:
            cls._columnar_build = previous


class WorkloadGenerator:
    """Base class for device workload models.

    Subclasses set ``device`` (CPU/DPU/GPU/VPU) and ``description`` and
    implement :meth:`generate`.
    """

    name: str = "abstract"
    device: str = "abstract"
    description: str = ""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(self, num_requests: int) -> Trace:
        raise NotImplementedError

    def generate_columnar(self, num_requests: int) -> ColumnarTrace:
        """Generate the same trace as :meth:`generate`, as columns.

        The generator's RNG streams are untouched — request content is
        bit-identical to :meth:`generate` — only the container differs,
        skipping per-request object materialization.
        """
        with TraceBuilder.columnar_output():
            result = self.generate(num_requests)
        if isinstance(result, ColumnarTrace):
            return result
        # Generator built its trace without a TraceBuilder; convert.
        return ColumnarTrace.from_trace(result)

    def generate_blocks(
        self, num_requests: int, block_requests: int = 8192
    ) -> Iterator[ColumnarTrace]:
        """Generate as a stream of column blocks (chunked generation).

        Concatenating the blocks reproduces :meth:`generate_columnar`
        exactly; consumers (profiler, batched cache replay) process one
        block at a time instead of holding per-request objects.
        """
        yield from self.generate_columnar(num_requests).iter_blocks(block_requests)

    def _rng(self, salt: int = 0) -> random.Random:
        # crc32 rather than hash(): string hashing is randomized per
        # process (PYTHONHASHSEED), and generators must produce identical
        # traces everywhere — including parallel worker processes.
        name_hash = zlib.crc32(self.name.encode("utf-8"))
        return random.Random(name_hash ^ self.seed ^ (salt << 16))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"


def align(address: int, granularity: int) -> int:
    return (address // granularity) * granularity
