"""DPU workload models: display processing.

Three Table II behaviours:

* **FBC-Linear**: scan-out of a compressed frame buffer in linear mode —
  header reads followed by payload reads marching linearly through the
  buffer, plus a smaller linear write stream (composition output)
  confined to a narrow region so some banks see no writes (Fig. 12b).
* **FBC-Tiled**: the same scan-out but with a tiled layout — sequential
  bursts inside a tile, then a jump to the next tile, producing the
  different stride (and thus row-hit) signature Fig. 10 contrasts.
* **Multi-layer**: several VGA layers fetched concurrently and blended,
  i.e. multiple interleaved linear streams.

Display engines are periodic: one burst of traffic per scan-line group,
one group of bursts per frame.
"""

from __future__ import annotations

from ..core.request import Operation
from ..core.trace import Trace
from .base import TraceBuilder, WorkloadGenerator

_FB_BASE = 0x4000_0000
_HEADER_BASE = 0x4800_0000
_COMPOSITION_BASE = 0x4900_0000
_COMPOSITION_REGION = 24 * 1024  # narrow write footprint (see Fig. 12b)
_LAYER_STRIDE = 0x0100_0000


class FrameBufferCompression(WorkloadGenerator):
    """FBC scan-out, linear or tiled mode."""

    device = "DPU"

    def __init__(
        self,
        seed: int = 0,
        tiled: bool = False,
        variant: int = 1,
        line_bytes: int = 8192,
        lines_per_frame: int = 64,
        tile_bytes: int = 1024,
        line_gap: int = 40_000,
        frame_gap: int = 4_000_000,
    ):
        super().__init__(seed)
        mode = "tiled" if tiled else "linear"
        self.name = f"fbc-{mode}{variant}"
        self.description = f"Display compressed frames ({mode} mode)"
        self.tiled = tiled
        self.variant = variant
        self.line_bytes = line_bytes
        self.lines_per_frame = lines_per_frame
        self.tile_bytes = tile_bytes
        # Variants differ in line pitch, standing in for the two traces.
        if variant == 2:
            self.line_bytes *= 2
            self.lines_per_frame //= 2
        self.line_gap = line_gap
        self.frame_gap = frame_gap

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        frame_bytes = self.line_bytes * self.lines_per_frame
        frame_index = 0
        while len(builder) < num_requests:
            base = _FB_BASE + (frame_index % 2) * frame_bytes  # double buffering
            for line in range(self.lines_per_frame):
                if len(builder) >= num_requests:
                    break
                self._scan_line(builder, rng, base, line)
                builder.idle(self.line_gap)
            builder.idle(self.frame_gap)
            frame_index += 1
        return builder.build().head(num_requests)

    def _scan_line(self, builder, rng, base, line) -> None:
        # Compression header for the line: one small read.
        builder.emit(_HEADER_BASE + line * 64, Operation.READ, 32, gap=rng.randint(1, 3))
        line_base = base + line * self.line_bytes
        if self.tiled:
            # Visit the tiles that intersect this line: a burst of
            # sequential reads inside each tile, then a jump.
            tiles = self.line_bytes // self.tile_bytes
            for tile in range(tiles):
                tile_base = line_base + tile * self.tile_bytes
                for offset in range(0, self.tile_bytes // 4, 64):
                    builder.emit(tile_base + offset, Operation.READ, 64, gap=1)
                builder.idle(rng.randint(4, 12))
        else:
            # Linear payload: constant-stride reads across the line. The
            # compressed payload skips over runs, so occasionally jump.
            offset = 0
            while offset < self.line_bytes // 4:
                builder.emit(line_base + offset, Operation.READ, 64, gap=1)
                offset += 64
                if rng.random() < 0.05:
                    offset += 256  # compressed run skipped
        # Composition output: the decompressed line is written out into a
        # small circular buffer. The write footprint is deliberately much
        # narrower than the read footprint, so only a subset of banks
        # ever sees writes (the paper's Fig. 12b signature) while rows
        # are reused line after line (write row hits, Fig. 10).
        write_bytes = self.line_bytes // 8
        out = _COMPOSITION_BASE + (line * write_bytes) % _COMPOSITION_REGION
        for offset in range(0, write_bytes, 64):
            if rng.random() < 0.35:
                # Blend: read the destination before overwriting it. The
                # resulting read/write *order* inside the region is what a
                # memoryless operation model (STM) fails to recreate.
                builder.emit(out + offset, Operation.READ, 64, gap=1)
            builder.emit(out + offset, Operation.WRITE, 64, gap=1)


class MultiLayerDisplay(WorkloadGenerator):
    """Multiple VGA layers fetched concurrently and composited."""

    device = "DPU"
    description = "Display multiple VGA layers"
    name = "multi-layer"

    def __init__(
        self,
        seed: int = 0,
        num_layers: int = 4,
        line_bytes: int = 2560,
        lines_per_frame: int = 64,
        line_gap: int = 30_000,
        frame_gap: int = 4_000_000,
    ):
        super().__init__(seed)
        self.num_layers = num_layers
        self.line_bytes = line_bytes
        self.lines_per_frame = lines_per_frame
        self.line_gap = line_gap
        self.frame_gap = frame_gap

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        while len(builder) < num_requests:
            for line in range(self.lines_per_frame):
                if len(builder) >= num_requests:
                    break
                # Interleave fetches from each layer, round-robin per 64B.
                offsets = [0] * self.num_layers
                while any(offset < self.line_bytes for offset in offsets):
                    for layer in range(self.num_layers):
                        if offsets[layer] >= self.line_bytes:
                            continue
                        base = _FB_BASE + layer * _LAYER_STRIDE + line * self.line_bytes
                        builder.emit(
                            base + offsets[layer], Operation.READ, 64, gap=rng.randint(1, 2)
                        )
                        offsets[layer] += 64
                # Composited line written out; blending reads back the
                # destination for every other chunk.
                out = _COMPOSITION_BASE + (line * self.line_bytes) % _COMPOSITION_REGION
                for offset in range(0, self.line_bytes, 64):
                    if (offset // 64) % 2 == 0:
                        builder.emit(out + offset, Operation.READ, 64, gap=1)
                    builder.emit(out + offset, Operation.WRITE, 64, gap=1)
                builder.idle(self.line_gap)
            builder.idle(self.frame_gap)
        return builder.build().head(num_requests)


def dpu_variants() -> list:
    """The five DPU traces of Table II."""
    return [
        FrameBufferCompression(tiled=False, variant=1),
        FrameBufferCompression(tiled=False, variant=2, seed=1),
        FrameBufferCompression(tiled=True, variant=1),
        FrameBufferCompression(tiled=True, variant=2, seed=1),
        MultiLayerDisplay(),
    ]


__all__ = ["FrameBufferCompression", "MultiLayerDisplay", "dpu_variants"]
