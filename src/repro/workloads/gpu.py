"""GPU workload models: graphics benchmarks and OpenCL compute.

Table II includes T-Rex and Manhattan (GFXBench) and an OpenCL stress
test. The paper's analysis (Fig. 7–8) hinges on GPUs issuing *large
requests in short time intervals* — dense bursts that pile packets into
the controller queues — from several concurrent streams (textures,
geometry, framebuffer, depth). The models recreate that:

* **graphics** (T-Rex / Manhattan): per-frame render bursts mixing
  blocky texture reads, linear vertex reads, tiled framebuffer writes
  and read-modify-write depth traffic;
* **OpenCL**: grid-strided streaming kernels — phases of intense
  read-compute-write traffic over large buffers.
"""

from __future__ import annotations

from ..core.request import Operation
from ..core.trace import Trace
from .base import TraceBuilder, WorkloadGenerator, align

_TEXTURE_BASE = 0xC000_0000
_VERTEX_BASE = 0xC800_0000
_FRAMEBUFFER_BASE = 0xD000_0000
_DEPTH_BASE = 0xD400_0000
_BUFFER_BASE = 0xE000_0000


class GraphicsRender(WorkloadGenerator):
    """A GFXBench-style render loop (T-Rex / Manhattan)."""

    device = "GPU"

    def __init__(
        self,
        seed: int = 0,
        benchmark: str = "trex",
        variant: int = 1,
        tiles_per_frame: int = 48,
        texture_bytes: int = 4 << 20,
        complexity: float = 1.0,
        tile_gap: int = 8_000,
        frame_gap: int = 2_000_000,
    ):
        super().__init__(seed)
        self.name = f"{benchmark}{variant}" if benchmark == "trex" else benchmark
        self.description = f"{benchmark} from GFXBench"
        self.benchmark = benchmark
        self.tiles_per_frame = tiles_per_frame
        self.texture_bytes = texture_bytes
        # Manhattan is the heavier benchmark: more textures, more overdraw.
        self.complexity = complexity if benchmark == "trex" else complexity * 1.6
        self.tile_gap = tile_gap
        self.frame_gap = frame_gap

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        tile_bytes = 2048
        while len(builder) < num_requests:
            for tile in range(self.tiles_per_frame):
                if len(builder) >= num_requests:
                    break
                self._render_tile(builder, rng, tile, tile_bytes)
                builder.idle(self.tile_gap)
            builder.idle(self.frame_gap)
        return builder.build().head(num_requests)

    def _render_tile(self, builder, rng, tile, tile_bytes) -> None:
        # Vertex fetch: linear burst.
        vertex_base = _VERTEX_BASE + tile * 4096
        for offset in range(0, 1024, 64):
            builder.emit(vertex_base + offset, Operation.READ, 64, gap=1)
        # Texture sampling: blocky locality — a few texel neighbourhoods,
        # each fetched as a short dense run of large reads.
        samples = int(10 * self.complexity)
        for _ in range(samples):
            neighbourhood = _TEXTURE_BASE + align(rng.randrange(self.texture_bytes), 2048)
            for offset in range(0, rng.choice((256, 256, 512)), 128):
                builder.emit(neighbourhood + offset, Operation.READ, 128, gap=1)
        # Depth test: read-modify-write over the tile's depth slice.
        depth_base = _DEPTH_BASE + tile * tile_bytes
        for offset in range(0, tile_bytes // 2, 64):
            builder.emit(depth_base + offset, Operation.READ, 64, gap=1)
            if rng.random() < 0.6:
                builder.emit(depth_base + offset, Operation.WRITE, 64, gap=1)
        # Resolved colour tile written to the framebuffer: a dense burst
        # of large writes (the queue-filling signature of Fig. 8).
        fb_base = _FRAMEBUFFER_BASE + tile * tile_bytes
        for offset in range(0, tile_bytes, 128):
            builder.emit(fb_base + offset, Operation.WRITE, 128, gap=1)


class OpenCLStress(WorkloadGenerator):
    """An OpenCL stress test: grid-strided streaming kernels."""

    device = "GPU"
    description = "An OpenCL stress test"

    def __init__(
        self,
        seed: int = 0,
        variant: int = 1,
        buffer_bytes: int = 8 << 20,
        work_groups: int = 32,
        kernel_gap: int = 500_000,
    ):
        super().__init__(seed)
        self.name = f"opencl{variant}"
        self.variant = variant
        self.buffer_bytes = buffer_bytes
        self.work_groups = work_groups
        self.kernel_gap = kernel_gap

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        stride = 128 * self.work_groups  # grid stride
        chunk = self.buffer_bytes // 8
        kernel = 0
        while len(builder) < num_requests:
            # Each kernel: work-groups march through input with a grid
            # stride, then write output; variant 2 adds a gather phase.
            in_base = _BUFFER_BASE + (kernel % 4) * chunk
            out_base = _BUFFER_BASE + 4 * chunk + (kernel % 4) * chunk
            for group in range(self.work_groups):
                if len(builder) >= num_requests:
                    break
                offset = group * 128
                while offset < chunk // 4:
                    builder.emit(in_base + offset, Operation.READ, 128, gap=1)
                    builder.emit(
                        out_base + offset, Operation.WRITE, 128, gap=rng.randint(1, 2)
                    )
                    offset += stride
            if self.variant == 2:
                for _ in range(64):
                    address = in_base + align(rng.randrange(chunk), 64)
                    builder.emit(address, Operation.READ, 64, gap=rng.randint(1, 3))
            builder.idle(self.kernel_gap)
            kernel += 1
        return builder.build().head(num_requests)


def gpu_variants() -> list:
    """The five GPU traces of Table II."""
    return [
        GraphicsRender(benchmark="trex", variant=1),
        GraphicsRender(benchmark="trex", variant=2, seed=1),
        GraphicsRender(benchmark="manhattan"),
        OpenCLStress(variant=1),
        OpenCLStress(variant=2, seed=1),
    ]


__all__ = ["GraphicsRender", "OpenCLStress", "gpu_variants"]
