"""SPEC CPU2006-like trace models for the Sec. V cache experiments.

The paper collects Pin traces of 23 SPEC CPU2006 benchmarks between the
CPU and the L1 (so addresses are raw and request sizes are word-sized).
SPEC binaries and reference inputs are licensed, so we substitute one
parameterized model per benchmark, tuned to that benchmark's well-known
memory personality (streaming vs. pointer-chasing vs. phase-heavy; big
vs. small footprint; read- vs. write-heavy). The Sec. V experiments only
require that the trace population spans that qualitative space — the
claims compare *synthesis fidelity per trace*, never absolute SPEC
numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..core.request import Operation
from ..core.trace import Trace
from .base import TraceBuilder, WorkloadGenerator, align

_DATA_BASE = 0x0800_0000
_STACK_BASE = 0x7F00_0000


@dataclass(frozen=True)
class SpecParams:
    """The memory personality of one benchmark model."""

    footprint: int  # bytes of the main working set
    num_streams: int  # concurrent sequential streams
    stream_strides: tuple  # strides (bytes) the streams may use
    stream_fraction: float  # accesses served by the streams
    reuse_fraction: float  # accesses re-touching a recent address
    write_fraction: float  # write probability
    phase_count: int  # distinct phases, each over a footprint slice
    phase_length: int  # requests per phase
    stride_chaos: float = 0.0  # probability a stream's stride is re-rolled
    stack_fraction: float = 0.1  # accesses to a small hot stack region


# Personalities drawn from the literature's common characterization of
# SPEC CPU2006 memory behaviour. Footprints are scaled down (the paper
# itself down-scales inputs for RTL emulation and notes this is fine for
# validating synthesis fidelity).
SPEC_PARAMS: Dict[str, SpecParams] = {
    "astar": SpecParams(2 << 20, 3, (8, 24, 40, 72, 136), 0.45, 0.25, 0.06, 5, 20_000, 0.35),
    "bzip2": SpecParams(4 << 20, 2, (1, 4, 8), 0.55, 0.25, 0.25, 4, 25_000),
    "cactusADM": SpecParams(8 << 20, 4, (8, 2048), 0.75, 0.10, 0.30, 2, 50_000),
    "calculix": SpecParams(1 << 20, 1, (8,), 0.85, 0.10, 0.20, 2, 50_000),
    "gcc": SpecParams(3 << 20, 2, (4, 8, 16), 0.35, 0.35, 0.25, 8, 12_000, 0.20),
    "GemsFDTD": SpecParams(12 << 20, 6, (8, 4096), 0.80, 0.05, 0.30, 2, 50_000),
    "gobmk": SpecParams(1 << 20, 1, (4, 8), 0.30, 0.45, 0.15, 6, 15_000, 0.15),
    "gromacs": SpecParams(2 << 20, 3, (4, 12, 36), 0.60, 0.25, 0.20, 3, 30_000),
    "h264ref": SpecParams(2 << 20, 2, (1, 4, 16, 384), 0.60, 0.30, 0.15, 4, 25_000),
    "hmmer": SpecParams(256 << 10, 2, (4, 8), 0.55, 0.40, 0.30, 2, 50_000),
    "lbm": SpecParams(16 << 20, 4, (8, 1600), 0.85, 0.02, 0.45, 1, 100_000),
    "leslie3d": SpecParams(10 << 20, 5, (8, 2048), 0.80, 0.05, 0.30, 2, 50_000),
    "libquantum": SpecParams(8 << 20, 1, (16,), 0.95, 0.01, 0.25, 1, 100_000),
    "mcf": SpecParams(24 << 20, 1, (8,), 0.12, 0.20, 0.10, 3, 35_000),
    "milc": SpecParams(12 << 20, 3, (8, 1152), 0.70, 0.08, 0.25, 3, 35_000),
    "namd": SpecParams(2 << 20, 3, (4, 8, 24), 0.65, 0.25, 0.15, 2, 50_000),
    "omnetpp": SpecParams(8 << 20, 1, (8,), 0.15, 0.30, 0.25, 4, 25_000),
    "perlbench": SpecParams(2 << 20, 2, (4, 8), 0.35, 0.40, 0.25, 8, 12_000, 0.15),
    "povray": SpecParams(1 << 20, 2, (4, 8, 16), 0.45, 0.40, 0.15, 5, 20_000),
    "sjeng": SpecParams(6 << 20, 1, (4, 8), 0.25, 0.40, 0.15, 6, 15_000, 0.10),
    "soplex": SpecParams(8 << 20, 2, (8, 1024), 0.60, 0.15, 0.15, 4, 25_000),
    "tonto": SpecParams(1 << 20, 2, (8, 16), 0.55, 0.30, 0.25, 4, 25_000),
    "zeusmp": SpecParams(10 << 20, 4, (8, 512, 4096), 0.75, 0.05, 0.30, 2, 50_000),
}

SPEC_BENCHMARKS: List[str] = sorted(SPEC_PARAMS)

# The six benchmarks Figs. 15–16 plot individually.
FIG15_BENCHMARKS = ["gobmk", "h264ref", "libquantum", "milc", "soplex", "zeusmp"]


class SpecWorkload(WorkloadGenerator):
    """One SPEC-like CPU→L1 trace generator."""

    device = "CPU"

    def __init__(self, benchmark: str, seed: int = 0):
        super().__init__(seed)
        if benchmark not in SPEC_PARAMS:
            raise ValueError(f"unknown SPEC benchmark {benchmark!r}")
        self.name = benchmark
        self.description = f"SPEC CPU2006-like model of {benchmark}"
        self.params = SPEC_PARAMS[benchmark]

    def generate(self, num_requests: int) -> Trace:
        params = self.params
        rng = self._rng()
        builder = TraceBuilder()
        recent: List[int] = []  # small window of recent addresses for reuse

        phase_slice = max(params.footprint // params.phase_count, 8192)
        request_index = 0
        while request_index < num_requests:
            phase = (request_index // params.phase_length) % params.phase_count
            # Phases occupy disjoint halves of a sparse address space: the
            # arrays the streams walk, and a scattered heap of objects.
            phase_base = _DATA_BASE + phase * phase_slice * 4
            arrays = self._phase_arrays(params, phase_base, phase_slice)
            objects = self._phase_objects(rng, params, phase_base, phase_slice)
            cursors = [base for base, _length in arrays]
            strides = [rng.choice(params.stream_strides) for _ in arrays]
            phase_end = min(num_requests, request_index + params.phase_length)
            while request_index < phase_end:
                addresses, size = self._next_addresses(
                    rng, params, arrays, objects, cursors, strides, recent
                )
                for address in addresses:
                    if request_index >= phase_end:
                        break
                    operation = (
                        Operation.WRITE
                        if rng.random() < params.write_fraction
                        else Operation.READ
                    )
                    builder.emit(address, operation, size, gap=rng.randint(1, 4))
                    recent.append((address, size))
                    if len(recent) > 64:
                        recent.pop(0)
                    request_index += 1
        return builder.build()

    @staticmethod
    def _phase_arrays(params, phase_base, phase_slice):
        """Disjoint contiguous arrays for the streams (70% of the slice)."""
        array_bytes = max((phase_slice * 7 // 10) // params.num_streams, 4096)
        pitch = array_bytes * 2  # gaps keep arrays spatially separate
        return [
            (phase_base + index * pitch, array_bytes)
            for index in range(params.num_streams)
        ]

    @staticmethod
    def _phase_objects(rng, params, phase_base, phase_slice):
        """Scattered heap objects covering ~30% of the slice.

        Objects live in a sparse heap above the arrays; random accesses
        pick an object (hot-skewed) and an offset inside it, which gives
        the clustered-with-gaps structure real heaps have (and that
        dynamic spatial partitioning exploits).
        """
        heap_base = phase_base + phase_slice * 2
        object_budget = phase_slice * 3 // 10
        objects = []
        offset = 0
        while object_budget > 0:
            size = rng.choice((2048, 4096, 4096, 8192, 16384))
            size = min(size, max(object_budget, 2048))
            objects.append((heap_base + offset, size))
            # Sparse placement: gaps between objects.
            offset += size + rng.choice((2048, 4096, 8192))
            object_budget -= size
        return objects

    def _next_addresses(
        self, rng, params, arrays, objects, cursors, strides, recent
    ):
        """The addresses and access size of the next program action.

        Stack and heap-object visits touch a short *run of fields*
        (consecutive 8B words), the way real code reads a struct; stream
        accesses read the word their stride steps over. Sizes match the
        stride so a dense scan covers its region without holes — which is
        what lets dynamic spatial partitioning coalesce regions instead
        of fragmenting them into single-word dust.
        """
        roll = rng.random()
        if roll < params.stack_fraction:
            # Hot stack frame: one of a few slots, a run of words each.
            slot = _STACK_BASE + int(rng.random() * rng.random() * 8) * 48
            return [slot + field * 8 for field in range(rng.randint(2, 4))], 8
        roll -= params.stack_fraction
        if roll < params.stream_fraction:
            index = rng.randrange(len(cursors))
            if params.stride_chaos and rng.random() < params.stride_chaos:
                strides[index] = rng.choice(params.stream_strides)
            cursors[index] += strides[index]
            base, length = arrays[index]
            if cursors[index] >= base + length:
                cursors[index] = base
            word = max(1, min(strides[index], 8))
            return [cursors[index]], word
        roll -= params.stream_fraction
        if roll < params.reuse_fraction and recent:
            address, size = recent[-rng.randint(1, min(len(recent), 32))]
            return [address], size
        # Pointer-chase: a hot-skewed object, a hot-skewed node (64B line)
        # inside it, then a run of fields from the node's start. Visits
        # often read every field, so hot neighbouring nodes coalesce.
        index = min(
            int(rng.random() * rng.random() * len(objects)), len(objects) - 1
        )
        base, size = objects[index]
        lines = max(size // 64, 1)
        node = base + min(int(rng.random() * rng.random() * lines), lines - 1) * 64
        return [node + field * 8 for field in range(rng.randint(4, 8))], 8


def spec_workloads(seed: int = 0) -> List[SpecWorkload]:
    """All 23 SPEC-like generators, in alphabetical order (Fig. 17 x-axis)."""
    return [SpecWorkload(name, seed=seed) for name in SPEC_BENCHMARKS]


__all__ = [
    "FIG15_BENCHMARKS",
    "SPEC_BENCHMARKS",
    "SPEC_PARAMS",
    "SpecParams",
    "SpecWorkload",
    "spec_workloads",
]
