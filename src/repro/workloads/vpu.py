"""VPU workload models: HEVC video decode.

The paper's HEVC traces (Table II) decode compressed video. The memory
behaviour the paper highlights (Figs. 2–3) has three signatures this
model recreates:

* frame-period bursts separated by long idle gaps (tens of millions of
  cycles between clusters);
* motion-compensation reads from one or more *reference frames*: sparse,
  irregular offsets inside 4KB-scale regions, mixed 64B/128B sizes, with
  occasional re-reads of the same region (Fig. 2, partition F);
* linear write-out of the reconstructed frame.
"""

from __future__ import annotations

from ..core.request import Operation
from ..core.trace import Trace
from .base import TraceBuilder, WorkloadGenerator, align

_FRAME_BASE = 0x8000_0000
_REFERENCE_BASE = 0x8100_0000
_OUTPUT_BASE = 0x8400_0000


class HEVCDecode(WorkloadGenerator):
    """HEVC decode: reference-frame reads + reconstructed-frame writes."""

    device = "VPU"
    description = "Decoding compressed video (HEVC)"

    def __init__(
        self,
        seed: int = 0,
        variant: int = 1,
        width_blocks: int = 64,
        height_blocks: int = 36,
        frame_gap: int = 30_000_000,
        ctu_row_gap: int = 1_500_000,
    ):
        super().__init__(seed)
        self.name = f"hevc{variant}"
        self.variant = variant
        self.width_blocks = width_blocks
        self.height_blocks = height_blocks
        # Variants differ in burst density and reference count, standing in
        # for the paper's three separate HEVC traces. Bursts (one per CTU
        # row) are separated by long idle gaps, as in the paper's Fig. 3.
        self.reference_frames = 1 + (variant % 3)
        self.frame_gap = frame_gap // variant
        self.ctu_row_gap = ctu_row_gap // variant

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        frame_bytes = self.width_blocks * self.height_blocks * 256
        row_bytes = self.width_blocks * 256

        while len(builder) < num_requests:
            # One frame: iterate CTU rows.
            for row in range(self.height_blocks):
                if len(builder) >= num_requests:
                    break
                self._decode_ctu_row(builder, rng, row, row_bytes, frame_bytes)
                builder.idle(self.ctu_row_gap)
            builder.idle(self.frame_gap)
        return builder.build().head(num_requests)

    def _decode_ctu_row(self, builder, rng, row, row_bytes, frame_bytes) -> None:
        # Motion compensation: for each CTU, read a small patch from a
        # reference frame. Patches are sparse within their 4KB-ish region
        # and sometimes revisited, giving Fig. 2's structure.
        for ctu in range(self.width_blocks):
            reference = rng.randrange(self.reference_frames)
            base = _REFERENCE_BASE + reference * frame_bytes
            # The co-located region plus a small random motion vector.
            region = base + align(row * row_bytes + ctu * 256, 4096)
            patch = region + align(rng.randrange(0, 4096), 8)
            patch_reads = rng.choice((4, 6, 6, 8))
            revisit = rng.random() < 0.3
            for repetition in range(2 if revisit else 1):
                address = patch
                for index in range(patch_reads):
                    size = 128 if index == 0 else 64
                    builder.emit(address, Operation.READ, size, gap=rng.randint(2, 6))
                    address += size if index == 0 else 64
            # Reconstructed pixels written out linearly.
            out = _OUTPUT_BASE + row * row_bytes + ctu * 256
            for chunk in range(0, 256, 64):
                builder.emit(out + chunk, Operation.WRITE, 64, gap=rng.randint(1, 4))
            if rng.random() < 0.1:
                # Deblocking filter touches the row above.
                neighbour = _OUTPUT_BASE + max(0, row - 1) * row_bytes + ctu * 256
                builder.emit(neighbour, Operation.READ, 64, gap=rng.randint(2, 5))


def hevc_variants() -> list:
    """The three HEVC traces of Table II."""
    return [HEVCDecode(variant=v) for v in (1, 2, 3)]


__all__ = ["HEVCDecode", "hevc_variants"]
