"""Synthetic workload models standing in for the paper's proprietary traces."""

from .base import TraceBuilder, WorkloadGenerator, align
from .cpu import CryptoWorkload, DeviceDriverWorkload, cpu_variants
from .dpu import FrameBufferCompression, MultiLayerDisplay, dpu_variants
from .gpu import GraphicsRender, OpenCLStress, gpu_variants
from .registry import (
    TABLE_II_DEVICES,
    TABLE_II_WORKLOADS,
    available_workloads,
    device_of,
    make_generator,
    workload_trace,
)
from .spec import (
    FIG15_BENCHMARKS,
    SPEC_BENCHMARKS,
    SPEC_PARAMS,
    SpecParams,
    SpecWorkload,
    spec_workloads,
)
from .vpu import HEVCDecode, hevc_variants

__all__ = [
    "CryptoWorkload",
    "DeviceDriverWorkload",
    "FIG15_BENCHMARKS",
    "FrameBufferCompression",
    "GraphicsRender",
    "HEVCDecode",
    "MultiLayerDisplay",
    "OpenCLStress",
    "SPEC_BENCHMARKS",
    "SPEC_PARAMS",
    "SpecParams",
    "SpecWorkload",
    "TABLE_II_DEVICES",
    "TABLE_II_WORKLOADS",
    "TraceBuilder",
    "WorkloadGenerator",
    "align",
    "available_workloads",
    "cpu_variants",
    "device_of",
    "dpu_variants",
    "gpu_variants",
    "hevc_variants",
    "make_generator",
    "spec_workloads",
    "workload_trace",
]
