"""CPU workload models (Table II): cache-filtered CPU traffic.

The paper's CPU traces come from the port *after* the cache hierarchy
(Sec. IV-A), so requests are 64B-granular, moderately irregular (only
misses and write-backs escape the caches), and read/write interleaving
is much less structured than for the fixed-function devices — which is
exactly why the paper's Fig. 6 shows the highest McC error on CPUs.

* **Crypto**: streaming over an input message + table lookups (S-boxes)
  + output writes.
* **CPU-D / CPU-G / CPU-V**: a CPU driving a DPU/GPU/VPU — bursts of
  descriptor writes and result reads synchronized to the device's frame
  or kernel cadence, over a heap the cache hierarchy partially filters.
"""

from __future__ import annotations

from ..core.request import Operation
from ..core.trace import Trace
from .base import TraceBuilder, WorkloadGenerator, align

_MESSAGE_BASE = 0x1000_0000
_TABLE_BASE = 0x1800_0000
_OUTPUT_BASE = 0x1A00_0000
_HEAP_BASE = 0x2000_0000
_SHARED_BASE = 0x3000_0000


class CryptoWorkload(WorkloadGenerator):
    """A cryptography workload: stream + S-box lookups + output stream."""

    device = "CPU"
    description = "A cryptography workload"

    def __init__(self, seed: int = 0, variant: int = 1, table_bytes: int = 16_384):
        super().__init__(seed)
        self.name = f"crypto{variant}"
        self.variant = variant
        self.table_bytes = table_bytes

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        block = 0
        flushed = 0
        while len(builder) < num_requests:
            # One chunk: a burst of misses (the prefetcher pulls several
            # message lines, S-box lookups escape the cache), then a
            # compute gap while the rounds run out of the cache. Post-L2
            # CPU traffic is bursty, not a sustained stream.
            lines = rng.randint(3, 6)
            for line in range(lines):
                in_addr = _MESSAGE_BASE + (block + line) * 64
                # The coherent interconnect merges adjacent misses, so
                # read sizes vary (64B lines, 128B pairs).
                read_size = 128 if rng.random() < 0.25 else 64
                builder.emit(in_addr, Operation.READ, read_size, gap=rng.randint(2, 5))
            lookups = rng.randint(1, 3) if self.variant == 1 else rng.randint(2, 5)
            for _ in range(lookups):
                table_addr = _TABLE_BASE + align(rng.randrange(self.table_bytes), 64)
                builder.emit(table_addr, Operation.READ, 64, gap=rng.randint(2, 6))
            # Encrypted output retires in large write-back sweeps: the L2
            # holds dirty output lines until eviction pressure flushes a
            # whole stretch at once (this is what keeps the write queue
            # deep, as in the paper's Fig. 7 CPU bars).
            block += lines
            while block - flushed >= 32:
                for line in range(32):
                    out = _OUTPUT_BASE + (flushed + line) * 64
                    # Partial-line evictions produce 32B writes now and then.
                    write_size = 32 if rng.random() < 0.15 else 64
                    builder.emit(out, Operation.WRITE, write_size, gap=rng.randint(1, 3))
                flushed += 32
            builder.idle(rng.randint(300, 1_200))  # compute between chunks
            if block % 512 < lines:
                builder.idle(rng.randint(20_000, 60_000))  # key schedule / syscall
        return builder.build().head(num_requests)


class DeviceDriverWorkload(WorkloadGenerator):
    """A CPU workload that interacts with an accelerator (CPU-D/G/V)."""

    device = "CPU"

    # The CPU-side cadence mirrors the device it drives.
    _CADENCE = {"dpu": 700_000, "gpu": 900_000, "vpu": 1_600_000}

    def __init__(self, seed: int = 0, companion: str = "dpu", heap_bytes: int = 1 << 20):
        super().__init__(seed)
        if companion not in self._CADENCE:
            raise ValueError(f"companion must be one of {sorted(self._CADENCE)}")
        self.name = f"cpu-{companion[0]}"
        self.description = f"A workload that interacts with a {companion.upper()}"
        self.companion = companion
        self.heap_bytes = heap_bytes
        self.cadence = self._CADENCE[companion]

    def generate(self, num_requests: int) -> Trace:
        rng = self._rng()
        builder = TraceBuilder()
        job = 0
        while len(builder) < num_requests:
            # Prepare work: walk heap structures (irregular reads with
            # pockets of spatial locality), build a descriptor.
            walk_length = rng.randint(24, 64)
            cursor = _HEAP_BASE + align(rng.randrange(self.heap_bytes), 64)
            emitted = 0
            for _ in range(walk_length):
                size = rng.choice((64, 64, 64, 128))
                builder.emit(cursor, Operation.READ, size, gap=rng.randint(2, 6))
                emitted += 1
                if emitted % rng.randint(4, 8) == 0:
                    builder.idle(rng.randint(200, 800))  # compute on the data
                if rng.random() < 0.6:
                    cursor += 64  # sequential pocket
                else:
                    cursor = _HEAP_BASE + align(rng.randrange(self.heap_bytes), 64)
            # Stage the input buffer for the device (linear writes).
            staging = _SHARED_BASE + (job % 4) * 65_536
            for offset in range(0, rng.randint(8, 24) * 64, 64):
                builder.emit(staging + offset, Operation.WRITE, 64, gap=rng.randint(1, 3))
            # Kick + poll the device, then read back results.
            builder.emit(_SHARED_BASE + 0x40_0000, Operation.WRITE, 64, gap=4)
            builder.idle(self.cadence)
            for offset in range(0, rng.randint(4, 16) * 64, 64):
                builder.emit(staging + 0x8000 + offset, Operation.READ, 64, gap=rng.randint(1, 4))
            job += 1
        return builder.build().head(num_requests)


def cpu_variants() -> list:
    """The five CPU traces of Table II."""
    return [
        CryptoWorkload(variant=1),
        CryptoWorkload(variant=2, seed=1),
        DeviceDriverWorkload(companion="dpu"),
        DeviceDriverWorkload(companion="gpu"),
        DeviceDriverWorkload(companion="vpu"),
    ]


__all__ = ["CryptoWorkload", "DeviceDriverWorkload", "cpu_variants"]
