"""Trace perturbation utilities for robustness experiments.

Statistical-simulation results should be robust to benign transforms of
the input trace: shifting the address space, scaling time, truncating,
or dropping a fraction of requests. These helpers produce the perturbed
variants the robustness tests and ablations consume.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.request import MemoryRequest
from ..core.trace import Trace


def shift_addresses(trace: Trace, offset: int) -> Trace:
    """Translate every address by ``offset`` bytes (must stay >= 0)."""
    requests = []
    for request in trace:
        address = request.address + offset
        if address < 0:
            raise ValueError("shift would produce a negative address")
        requests.append(
            MemoryRequest(request.timestamp, address, request.operation, request.size)
        )
    return Trace(requests)


def scale_time(trace: Trace, numerator: int, denominator: int = 1) -> Trace:
    """Scale all timestamps by ``numerator / denominator`` (rational).

    Rational scaling keeps timestamps integral and preserves order.
    """
    if numerator <= 0 or denominator <= 0:
        raise ValueError("scale must be positive")
    requests = [
        MemoryRequest(
            request.timestamp * numerator // denominator,
            request.address,
            request.operation,
            request.size,
        )
        for request in trace
    ]
    return Trace(requests)


def drop_requests(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Randomly drop ``fraction`` of requests (sampling loss)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    rng = random.Random(seed)
    return Trace([r for r in trace if rng.random() >= fraction])


def truncate_time(trace: Trace, max_cycles: int) -> Trace:
    """Keep only requests within ``max_cycles`` of the trace start."""
    if not len(trace):
        return Trace()
    origin = trace.start_time
    return Trace([r for r in trace if r.timestamp - origin <= max_cycles])


def interleave(trace_a: Trace, trace_b: Trace, offset_b: int = 0) -> Trace:
    """Merge two traces in time order, shifting the second by ``offset_b``."""
    shifted = [
        MemoryRequest(r.timestamp + offset_b, r.address, r.operation, r.size)
        for r in trace_b
    ]
    merged = list(trace_a) + shifted
    merged.sort(key=lambda r: r.timestamp)
    return Trace(merged)


def downscale(trace: Trace, keep: Optional[int] = None) -> Trace:
    """The paper's note: down-scaled inputs suffice for validation.

    Keeps the first ``keep`` requests and rescales their timestamps so
    the truncated trace spans the same proportion of time.
    """
    if keep is None or keep >= len(trace):
        return Trace(list(trace))
    return trace.head(keep)
