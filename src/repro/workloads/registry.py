"""Workload registry: every Table II trace plus the 23 SPEC-like models."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.trace import Trace
from .base import WorkloadGenerator
from .cpu import CryptoWorkload, DeviceDriverWorkload
from .dpu import FrameBufferCompression, MultiLayerDisplay
from .gpu import GraphicsRender, OpenCLStress
from .spec import SPEC_BENCHMARKS, SpecWorkload
from .vpu import HEVCDecode

GeneratorFactory = Callable[[int], WorkloadGenerator]

# Table II of the paper: name -> (device, factory). Seeds passed to the
# factory keep multi-trace workloads (e.g. crypto1/crypto2) distinct.
_TABLE_II_FACTORIES: Dict[str, GeneratorFactory] = {
    "crypto1": lambda seed: CryptoWorkload(variant=1, seed=seed),
    "crypto2": lambda seed: CryptoWorkload(variant=2, seed=seed + 1),
    "cpu-d": lambda seed: DeviceDriverWorkload(companion="dpu", seed=seed),
    "cpu-g": lambda seed: DeviceDriverWorkload(companion="gpu", seed=seed),
    "cpu-v": lambda seed: DeviceDriverWorkload(companion="vpu", seed=seed),
    "fbc-linear1": lambda seed: FrameBufferCompression(tiled=False, variant=1, seed=seed),
    "fbc-linear2": lambda seed: FrameBufferCompression(tiled=False, variant=2, seed=seed + 1),
    "fbc-tiled1": lambda seed: FrameBufferCompression(tiled=True, variant=1, seed=seed),
    "fbc-tiled2": lambda seed: FrameBufferCompression(tiled=True, variant=2, seed=seed + 1),
    "multi-layer": lambda seed: MultiLayerDisplay(seed=seed),
    "trex1": lambda seed: GraphicsRender(benchmark="trex", variant=1, seed=seed),
    "trex2": lambda seed: GraphicsRender(benchmark="trex", variant=2, seed=seed + 1),
    "manhattan": lambda seed: GraphicsRender(benchmark="manhattan", seed=seed),
    "opencl1": lambda seed: OpenCLStress(variant=1, seed=seed),
    "opencl2": lambda seed: OpenCLStress(variant=2, seed=seed + 1),
    "hevc1": lambda seed: HEVCDecode(variant=1, seed=seed),
    "hevc2": lambda seed: HEVCDecode(variant=2, seed=seed + 1),
    "hevc3": lambda seed: HEVCDecode(variant=3, seed=seed + 2),
}

# Device grouping used by the per-device figures (Figs. 6, 7, 9, 13).
TABLE_II_DEVICES: Dict[str, List[str]] = {
    "CPU": ["crypto1", "crypto2", "cpu-d", "cpu-g", "cpu-v"],
    "DPU": ["fbc-linear1", "fbc-linear2", "fbc-tiled1", "fbc-tiled2", "multi-layer"],
    "GPU": ["trex1", "trex2", "manhattan", "opencl1", "opencl2"],
    "VPU": ["hevc1", "hevc2", "hevc3"],
}

TABLE_II_WORKLOADS: List[str] = [
    name for names in TABLE_II_DEVICES.values() for name in names
]

_SPEC_FACTORIES: Dict[str, GeneratorFactory] = {
    name: (lambda seed, _name=name: SpecWorkload(_name, seed=seed))
    for name in SPEC_BENCHMARKS
}

_ALL_FACTORIES: Dict[str, GeneratorFactory] = {**_TABLE_II_FACTORIES, **_SPEC_FACTORIES}


def available_workloads() -> List[str]:
    """Names of every registered workload (Table II + SPEC-like)."""
    return sorted(_ALL_FACTORIES)


def make_generator(name: str, seed: int = 0) -> WorkloadGenerator:
    """Instantiate the generator for a registered workload."""
    try:
        factory = _ALL_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; see available_workloads()"
        ) from None
    return factory(seed)


def workload_trace(name: str, num_requests: int = 100_000, seed: int = 0) -> Trace:
    """Generate the baseline trace for a registered workload."""
    return make_generator(name, seed=seed).generate(num_requests)


def device_of(name: str) -> Optional[str]:
    """The Table II device class of a workload, or None for SPEC models."""
    for device, names in TABLE_II_DEVICES.items():
        if name in names:
            return device
    return None
