"""Mesh-based simulation driver: device -> NoC -> memory controllers.

An alternative to the crossbar platform: the device injects at a mesh
node, each request is routed to the mesh node of the memory channel that
owns its first burst, and the memory system sees the request at its NoC
arrival time. Captures the "strain on the interconnection network"
dimension the paper mentions (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.trace import Trace
from ..dram.address_map import AddressMap
from ..dram.config import MemoryConfig
from ..dram.memory_system import MemorySystem
from ..dram.stats import MemorySystemStats
from ..interconnect.mesh import (
    Coordinate,
    MeshConfig,
    MeshNetwork,
    MeshStats,
    controller_placement,
)


@dataclass
class NocRunResult:
    memory: MemorySystemStats
    mesh: MeshStats
    controller_nodes: List[Coordinate]


def simulate_trace_mesh(
    trace: Trace,
    memory_config: Optional[MemoryConfig] = None,
    mesh_config: Optional[MeshConfig] = None,
    device_node: Coordinate = (0, 0),
) -> NocRunResult:
    """Replay a trace through a mesh NoC into the memory system.

    Requests are routed to the controller owning their *first* burst
    (requests spanning channels still arrive through one port, like a
    device's single injection point). Arrival order at the memory is
    enforced by the shared in-order front end.
    """
    memory = MemorySystem(memory_config)
    mesh = MeshNetwork(mesh_config)
    placement = controller_placement(mesh.config, memory.config.num_channels)
    address_map = AddressMap(memory.config)

    last_accept = 0
    for request in trace:
        channel = address_map.decode(request.address).channel
        arrival = mesh.send(request, device_node, placement[channel])
        at_time = max(arrival, last_accept)
        last_accept = memory.submit(request, at_time=at_time, injected_at=request.timestamp)
    memory.drain()
    return NocRunResult(memory=memory.stats, mesh=mesh.stats, controller_nodes=placement)
