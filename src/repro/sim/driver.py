"""Simulation drivers: trace / profile -> crossbar -> memory system.

Mirrors the paper's validation platform (Sec. IV-A): a traffic generator
feeding main memory through a crossbar. Three entry points:

* :func:`simulate_trace` — replay a trace or any time-ordered request
  iterable (the *baseline* runs, and Option A synthesis);
* :func:`simulate_profile` — coupled Option B: synthesis pulls requests
  from a :class:`FeedbackSynthesizer` and feeds backpressure delays back
  into its timestamps;
* :func:`simulate_synthetic` — Option A: profile -> streamed synthetic
  requests -> replay, without materializing the trace.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Union

from ..core.columnar import ColumnarTrace
from ..core.profile import Profile
from ..core.request import MemoryRequest
from ..core.synthesis import FeedbackSynthesizer, synthesize_stream
from ..dram.config import MemoryConfig
from ..dram.memory_system import MemorySystem
from ..dram.stats import MemorySystemStats
from ..interconnect.crossbar import Crossbar, CrossbarConfig
from ..lint import sanitize as _sanitize


def _checker(sanitize: Optional[bool], label: str):
    """Resolve the per-call flag against the process-wide sanitize mode.

    ``None`` follows :func:`repro.lint.sanitize.active`; ``True`` forces
    a checker on; ``False`` forces it off. The checker only observes the
    stream, so results are bit-identical with or without it.
    """
    if sanitize is False:
        return None
    if sanitize is None and not _sanitize.active():
        return None
    checker = _sanitize.make_checker(label)
    return checker if checker is not None else _sanitize.TraceInvariantChecker(label=label)


def simulate_trace(
    trace: Iterable[MemoryRequest],
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    sanitize: Optional[bool] = None,
) -> MemorySystemStats:
    """Replay a time-ordered request stream through crossbar + memory.

    Accepts a :class:`~repro.core.trace.Trace` or any iterable of
    time-ordered requests — including a lazy generator, so synthetic
    streams can be replayed without materializing the full trace.

    ``sanitize=True`` (or process-wide
    :func:`repro.lint.sanitize.enable`) validates every request against
    the trace invariants — monotonic timestamps, legal addresses and
    operations — raising
    :class:`~repro.lint.sanitize.InvariantViolation` on the first break.
    """
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    checker = _checker(sanitize, "simulate_trace")
    if checker is not None:
        trace = checker.watch(trace)
    for request in trace:
        crossbar.send(request)
    memory.drain()
    return memory.stats


def simulate_blocks(
    blocks: Iterable[ColumnarTrace],
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    sanitize: Optional[bool] = None,
) -> MemorySystemStats:
    """Replay a stream of column blocks through crossbar + memory.

    The out-of-core twin of :func:`simulate_trace`: blocks (e.g. from
    :func:`repro.stream.iter_blocks`) are expanded into per-request
    objects one block at a time, so peak memory is O(block) regardless
    of trace length. Statistics equal :func:`simulate_trace` over the
    concatenated blocks.
    """
    return simulate_trace(
        (request for block in blocks for request in block.iter_requests()),
        config,
        crossbar_config,
        sanitize=sanitize,
    )


def simulate_profile(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
    sanitize: Optional[bool] = None,
) -> MemorySystemStats:
    """Coupled synthesis (Option B): backpressure feeds back into timing."""
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    synthesizer = FeedbackSynthesizer(profile, seed=seed, strict=strict)
    checker = _checker(sanitize, "simulate_profile")
    while True:
        request = synthesizer.next_request()
        if request is None:
            break
        if checker is not None:
            checker.check(request)
        delay = crossbar.send(request)
        if delay > 0:
            synthesizer.report_backpressure(delay)
    memory.drain()
    return memory.stats


def simulate_synthetic(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
    sanitize: Optional[bool] = None,
) -> MemorySystemStats:
    """Option A: synthesize and replay, streaming request by request.

    Equivalent to replaying :func:`~repro.core.synthesis.synthesize`'s
    trace, but the synthetic requests are fed straight from the
    priority-queue merge into the simulator without buffering the whole
    stream in memory first.
    """
    return simulate_trace(
        synthesize_stream(profile, seed=seed, strict=strict),
        config,
        crossbar_config,
        sanitize=sanitize,
    )
