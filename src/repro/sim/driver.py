"""Simulation drivers: trace / profile -> crossbar -> memory system.

Mirrors the paper's validation platform (Sec. IV-A): a traffic generator
feeding main memory through a crossbar. Three entry points:

* :func:`simulate_trace` — replay a trace (the *baseline* runs, and
  Option A synthesis, where a synthetic trace is produced first);
* :func:`simulate_profile` — coupled Option B: synthesis pulls requests
  from a :class:`FeedbackSynthesizer` and feeds backpressure delays back
  into its timestamps;
* :func:`simulate_synthetic` — convenience: profile -> trace -> replay.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from ..core.profile import Profile
from ..core.synthesis import FeedbackSynthesizer, synthesize
from ..core.trace import Trace
from ..dram.config import MemoryConfig
from ..dram.memory_system import MemorySystem
from ..dram.stats import MemorySystemStats
from ..interconnect.crossbar import Crossbar, CrossbarConfig


def simulate_trace(
    trace: Trace,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
) -> MemorySystemStats:
    """Replay a time-ordered trace through crossbar + memory system."""
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    for request in trace:
        crossbar.send(request)
    memory.drain()
    return memory.stats


def simulate_profile(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> MemorySystemStats:
    """Coupled synthesis (Option B): backpressure feeds back into timing."""
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    synthesizer = FeedbackSynthesizer(profile, seed=seed, strict=strict)
    while True:
        request = synthesizer.next_request()
        if request is None:
            break
        delay = crossbar.send(request)
        if delay > 0:
            synthesizer.report_backpressure(delay)
    memory.drain()
    return memory.stats


def simulate_synthetic(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> MemorySystemStats:
    """Option A: synthesize a full trace first, then replay it."""
    return simulate_trace(
        synthesize(profile, seed=seed, strict=strict), config, crossbar_config
    )
