"""Simulation drivers: trace / profile -> crossbar -> memory system.

Mirrors the paper's validation platform (Sec. IV-A): a traffic generator
feeding main memory through a crossbar. Three entry points:

* :func:`simulate_trace` — replay a trace or any time-ordered request
  iterable (the *baseline* runs, and Option A synthesis);
* :func:`simulate_profile` — coupled Option B: synthesis pulls requests
  from a :class:`FeedbackSynthesizer` and feeds backpressure delays back
  into its timestamps;
* :func:`simulate_synthetic` — Option A: profile -> streamed synthetic
  requests -> replay, without materializing the trace.

Two equivalent replay engines sit behind the open-loop entry points,
mirroring :mod:`repro.sim.cache_driver`: the scalar crossbar + memory
event loop and the batched :class:`~repro.dram.batched.BatchedReplay`
(columnar blocks, vectorized quiescent epochs). Both produce
field-identical :class:`~repro.dram.stats.MemorySystemStats`; the
resolved backend (see :mod:`repro.core.columnar`) picks the engine.
The batched engine handles only the open-loop shape — Option B
feedback synthesis, sanitize mode, ChargeCache, refresh and non-default
page policies always take the scalar path
(:func:`repro.dram.batched.batched_replay_supported` is the gate).

Replay wall time is attributed to ``replay.crossbar`` (injection) and
``replay.dram`` (final drain) phase timers when observability is on;
the attribution is wall-clock only and never changes statistics.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Iterable, Iterator, Optional, Union

from .. import obs
from ..core.columnar import ColumnarTrace, resolve_backend
from ..core.profile import Profile
from ..core.request import MemoryRequest
from ..core.synthesis import FeedbackSynthesizer, synthesize_stream
from ..core.trace import Trace
from ..dram.batched import BatchedReplay, batched_replay_supported
from ..dram.config import MemoryConfig
from ..dram.memory_system import MemorySystem
from ..dram.stats import MemorySystemStats
from ..interconnect.crossbar import Crossbar, CrossbarConfig
from ..lint import sanitize as _sanitize

#: Requests per column block when batching a lazy request stream.
_BATCH_CHUNK = 8192


def _checker(sanitize: Optional[bool], label: str):
    """Resolve the per-call flag against the process-wide sanitize mode.

    ``None`` follows :func:`repro.lint.sanitize.active`; ``True`` forces
    a checker on; ``False`` forces it off. The checker only observes the
    stream, so results are bit-identical with or without it.
    """
    if sanitize is False:
        return None
    if sanitize is None and not _sanitize.active():
        return None
    checker = _sanitize.make_checker(label)
    return checker if checker is not None else _sanitize.TraceInvariantChecker(label=label)


def _sanitizing(sanitize: Optional[bool]) -> bool:
    return sanitize is True or (sanitize is None and _sanitize.active())


def _use_batched(
    backend: Optional[str],
    sanitize: Optional[bool],
    config: Optional[MemoryConfig],
    crossbar_config: Optional[CrossbarConfig],
) -> bool:
    return (
        resolve_backend(backend) == "columnar"
        and not _sanitizing(sanitize)
        and batched_replay_supported(config, crossbar_config)
    )


def _feed_lazy(engine: BatchedReplay, requests: Iterable[MemoryRequest]) -> None:
    """Feed a lazy request stream to the batch engine, chunk by chunk.

    One chunk of lookahead marks the final block so the engine can
    certify the tail; a chunk whose values do not fit the column store
    (columns are bounded, request objects are not) is sent scalar.
    """
    iterator = iter(requests)
    chunk = list(islice(iterator, _BATCH_CHUNK))
    while chunk:
        upcoming = list(islice(iterator, _BATCH_CHUNK))
        try:
            block = ColumnarTrace.from_trace(chunk)
        except (ValueError, OverflowError):
            block = None
        if block is not None:
            engine.feed(block, final=not upcoming)
        else:
            send = engine.crossbar.send
            for request in chunk:
                send(request)
        chunk = upcoming


def _replay_batched(
    source: Union[ColumnarTrace, Iterable[MemoryRequest]],
    config: Optional[MemoryConfig],
    crossbar_config: Optional[CrossbarConfig],
) -> MemorySystemStats:
    engine = BatchedReplay(config, crossbar_config)
    with obs.phase("replay.crossbar"):
        if isinstance(source, ColumnarTrace):
            engine.feed(source, final=True)
        else:
            _feed_lazy(engine, source)
    with obs.phase("replay.dram"):
        return engine.finish()


def simulate_trace(
    trace: Union[ColumnarTrace, Iterable[MemoryRequest]],
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    sanitize: Optional[bool] = None,
    backend: Optional[str] = None,
) -> MemorySystemStats:
    """Replay a time-ordered request stream through crossbar + memory.

    Accepts a :class:`~repro.core.trace.Trace`, a
    :class:`~repro.core.columnar.ColumnarTrace`, or any iterable of
    time-ordered requests — including a lazy generator, so synthetic
    streams can be replayed without materializing the full trace.

    ``sanitize=True`` (or process-wide
    :func:`repro.lint.sanitize.enable`) validates every request against
    the trace invariants — monotonic timestamps, legal addresses and
    operations — raising
    :class:`~repro.lint.sanitize.InvariantViolation` on the first break.

    ``backend`` overrides the process-wide selection; the scalar and
    batched engines return identical statistics.
    """
    if _use_batched(backend, sanitize, config, crossbar_config):
        return _replay_batched(trace, config, crossbar_config)
    if isinstance(trace, ColumnarTrace):
        trace = trace.iter_requests()
    checker = _checker(sanitize, "simulate_trace")
    if checker is not None:
        trace = checker.watch(trace)
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    with obs.phase("replay.crossbar"):
        crossbar.send_many(trace)
    with obs.phase("replay.dram"):
        memory.drain()
    return memory.stats


def simulate_blocks(
    blocks: Iterable[ColumnarTrace],
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    sanitize: Optional[bool] = None,
    backend: Optional[str] = None,
) -> MemorySystemStats:
    """Replay a stream of column blocks through crossbar + memory.

    The out-of-core twin of :func:`simulate_trace`: blocks (e.g. from
    :func:`repro.stream.iter_blocks`) are consumed one block at a time,
    so peak memory is O(block) regardless of trace length. On the
    columnar backend the blocks route straight into the batch engine
    without ever materializing per-request objects; the scalar fallback
    expands them lazily. Statistics equal :func:`simulate_trace` over
    the concatenated blocks.
    """
    if _use_batched(backend, sanitize, config, crossbar_config):
        engine = BatchedReplay(config, crossbar_config)
        with obs.phase("replay.crossbar"):
            iterator: Iterator[ColumnarTrace] = iter(blocks)
            block = next(iterator, None)
            while block is not None:
                upcoming = next(iterator, None)
                engine.feed(block, final=upcoming is None)
                block = upcoming
        with obs.phase("replay.dram"):
            return engine.finish()
    return simulate_trace(
        (request for block in blocks for request in block.iter_requests()),
        config,
        crossbar_config,
        sanitize=sanitize,
        backend="scalar",
    )


def simulate_profile(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
    sanitize: Optional[bool] = None,
) -> MemorySystemStats:
    """Coupled synthesis (Option B): backpressure feeds back into timing.

    Always scalar: each request's timestamp depends on the delay the
    previous one observed, so the stream cannot be batched ahead of the
    simulator.
    """
    memory = MemorySystem(config)
    crossbar = Crossbar(memory, crossbar_config)
    synthesizer = FeedbackSynthesizer(profile, seed=seed, strict=strict)
    checker = _checker(sanitize, "simulate_profile")
    with obs.phase("replay.crossbar"):
        while True:
            request = synthesizer.next_request()
            if request is None:
                break
            if checker is not None:
                checker.check(request)
            delay = crossbar.send(request)
            if delay > 0:
                synthesizer.report_backpressure(delay)
    with obs.phase("replay.dram"):
        memory.drain()
    return memory.stats


def simulate_synthetic(
    profile: Profile,
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
    sanitize: Optional[bool] = None,
    backend: Optional[str] = None,
) -> MemorySystemStats:
    """Option A: synthesize and replay, streaming request by request.

    Equivalent to replaying :func:`~repro.core.synthesis.synthesize`'s
    trace, but the synthetic requests are fed straight from the
    priority-queue merge into the simulator without buffering the whole
    stream in memory first (the batched engine consumes it in column
    chunks).
    """
    return simulate_trace(
        synthesize_stream(profile, seed=seed, strict=strict),
        config,
        crossbar_config,
        sanitize=sanitize,
        backend=backend,
    )
