"""Cache simulation drivers for the Sec. V experiments.

Atomic-mode replay: timestamps are ignored and only request order
matters, matching the paper's gem5 configuration for the CPU/L1 study.

Two equivalent replay engines sit behind :func:`run_cache_trace`: the
scalar :class:`~repro.cache.hierarchy.CacheHierarchy` and the batched
:class:`~repro.cache.batched.BatchedCacheHierarchy` (columnar chunks,
dict-LRU sets). Both produce field-identical :class:`CacheStats`; the
resolved backend (see :mod:`repro.core.columnar`) picks the engine. The
batched engine handles only plain LRU sweeps — sanitized runs and
non-LRU replacement policies always take the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..cache.batched import BatchedCacheHierarchy
from ..cache.cache import CacheConfig, CacheStats
from ..cache.hierarchy import CacheHierarchy, paper_l2_config
from ..core.columnar import ColumnarTrace, resolve_backend
from ..core.trace import Trace
from ..lint import sanitize as _sanitize


@dataclass
class CacheRunResult:
    """L1 + L2 statistics from one atomic-mode replay."""

    l1: CacheStats
    l2: CacheStats

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate


def run_cache_trace(
    trace: Union[Trace, ColumnarTrace],
    l1_config: Optional[CacheConfig] = None,
    l2_config: Optional[CacheConfig] = None,
    sanitize: Optional[bool] = None,
    backend: Optional[str] = None,
) -> CacheRunResult:
    """Replay a trace through an L1/L2 hierarchy and return statistics.

    ``sanitize=True`` (or process-wide
    :func:`repro.lint.sanitize.enable`) validates addresses, sizes and
    operations; timestamps are *not* required to be monotonic here
    because atomic-mode replay ignores them by construction.

    ``backend`` overrides the process-wide selection; the scalar and
    batched engines return identical statistics.
    """
    l1_config = l1_config if l1_config is not None else CacheConfig(32 * 1024, 4)
    l2_config = l2_config if l2_config is not None else paper_l2_config()
    sanitizing = sanitize is True or (sanitize is None and _sanitize.active())

    if (
        resolve_backend(backend) == "columnar"
        and not sanitizing
        and l1_config.replacement == "lru"
        and l2_config.replacement == "lru"
    ):
        batched = BatchedCacheHierarchy(l1_config, l2_config)
        batched.run(trace)
        return CacheRunResult(l1=batched.l1_stats, l2=batched.l2_stats)

    if isinstance(trace, ColumnarTrace):
        trace = trace.to_trace()
    hierarchy = CacheHierarchy(l1_config, l2_config)
    requests = trace
    if sanitizing:
        checker = _sanitize.TraceInvariantChecker(
            label="run_cache_trace", require_monotonic=False
        )
        requests = checker.watch(trace)
    hierarchy.run(requests)
    return CacheRunResult(l1=hierarchy.l1_stats, l2=hierarchy.l2_stats)


def run_cache_blocks(
    blocks: Iterable[ColumnarTrace],
    l1_config: Optional[CacheConfig] = None,
    l2_config: Optional[CacheConfig] = None,
    sanitize: Optional[bool] = None,
    backend: Optional[str] = None,
) -> CacheRunResult:
    """Replay a stream of column blocks through the L1/L2 hierarchy.

    The out-of-core twin of :func:`run_cache_trace`: blocks (e.g. from
    :func:`repro.stream.iter_blocks`) are consumed one at a time, so
    peak memory is O(block) regardless of trace length. Engine selection
    and statistics match :func:`run_cache_trace` over the concatenated
    blocks exactly.
    """
    l1_config = l1_config if l1_config is not None else CacheConfig(32 * 1024, 4)
    l2_config = l2_config if l2_config is not None else paper_l2_config()
    sanitizing = sanitize is True or (sanitize is None and _sanitize.active())

    if (
        resolve_backend(backend) == "columnar"
        and not sanitizing
        and l1_config.replacement == "lru"
        and l2_config.replacement == "lru"
    ):
        batched = BatchedCacheHierarchy(l1_config, l2_config)
        batched.run_blocks(blocks)
        return CacheRunResult(l1=batched.l1_stats, l2=batched.l2_stats)

    hierarchy = CacheHierarchy(l1_config, l2_config)
    requests = (request for block in blocks for request in block.iter_requests())
    if sanitizing:
        checker = _sanitize.TraceInvariantChecker(
            label="run_cache_blocks", require_monotonic=False
        )
        requests = checker.watch(requests)
    hierarchy.run(requests)
    return CacheRunResult(l1=hierarchy.l1_stats, l2=hierarchy.l2_stats)
