"""Cache simulation drivers for the Sec. V experiments.

Atomic-mode replay: timestamps are ignored and only request order
matters, matching the paper's gem5 configuration for the CPU/L1 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.cache import CacheConfig, CacheStats
from ..cache.hierarchy import CacheHierarchy, paper_l2_config
from ..core.trace import Trace
from ..lint import sanitize as _sanitize


@dataclass
class CacheRunResult:
    """L1 + L2 statistics from one atomic-mode replay."""

    l1: CacheStats
    l2: CacheStats

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate


def run_cache_trace(
    trace: Trace,
    l1_config: Optional[CacheConfig] = None,
    l2_config: Optional[CacheConfig] = None,
    sanitize: Optional[bool] = None,
) -> CacheRunResult:
    """Replay a trace through an L1/L2 hierarchy and return statistics.

    ``sanitize=True`` (or process-wide
    :func:`repro.lint.sanitize.enable`) validates addresses, sizes and
    operations; timestamps are *not* required to be monotonic here
    because atomic-mode replay ignores them by construction.
    """
    hierarchy = CacheHierarchy(
        l1_config if l1_config is not None else CacheConfig(32 * 1024, 4),
        l2_config if l2_config is not None else paper_l2_config(),
    )
    requests = trace
    if sanitize is True or (sanitize is None and _sanitize.active()):
        checker = _sanitize.TraceInvariantChecker(
            label="run_cache_trace", require_monotonic=False
        )
        requests = checker.watch(trace)
    hierarchy.run(requests)
    return CacheRunResult(l1=hierarchy.l1_stats, l2=hierarchy.l2_stats)
