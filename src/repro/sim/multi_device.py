"""Multi-device SoC simulation: several IP blocks sharing one memory.

The paper's motivation is whole-SoC exploration: "Gables considers
multiple IP blocks running concurrently on a mobile SoC" (Sec. II) and
Mocktails profiles are meant to stand in for devices inside such a
simulation. This driver connects any mix of traffic sources — baseline
traces or Mocktails profiles — through per-device crossbar ports into a
shared :class:`MemorySystem`, interleaving their requests in global time
order and reporting both shared and per-device statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..core.profile import Profile
from ..core.request import MemoryRequest
from ..core.synthesis import synthesize_stream
from ..core.trace import Trace
from ..dram.config import MemoryConfig
from ..dram.memory_system import MemorySystem
from ..dram.stats import MemorySystemStats
from ..interconnect.crossbar import CrossbarConfig

Source = Union[Trace, Profile]


@dataclass
class DeviceStats:
    """Per-device view of the shared simulation."""

    name: str
    requests: int = 0
    reads: int = 0
    writes: int = 0
    bytes_transferred: int = 0
    latency_sum: int = 0
    latency_count: int = 0
    backpressure_delay: int = 0

    @property
    def avg_access_latency(self) -> float:
        return self.latency_sum / self.latency_count if self.latency_count else 0.0


@dataclass
class SoCResult:
    """Outcome of a multi-device run."""

    memory: MemorySystemStats
    devices: Dict[str, DeviceStats] = field(default_factory=dict)

    def bandwidth_share(self) -> Dict[str, float]:
        """Fraction of transferred bytes attributable to each device."""
        total = sum(d.bytes_transferred for d in self.devices.values())
        if not total:
            return {name: 0.0 for name in self.devices}
        return {
            name: device.bytes_transferred / total
            for name, device in self.devices.items()
        }


class _DeviceStream:
    """A named, peekable request stream with its own port serialization."""

    def __init__(self, name: str, source: Source, seed: int, port: CrossbarConfig):
        self.name = name
        self.port = port
        if isinstance(source, Trace):
            self._iterator: Iterator[MemoryRequest] = iter(source)
        else:
            self._iterator = synthesize_stream(source, seed=seed)
        self._last_forward: Optional[int] = None

    def next_request(self) -> Optional[MemoryRequest]:
        return next(self._iterator, None)

    def forward_time(self, request: MemoryRequest) -> int:
        """Apply port latency and serialization to an injection."""
        time = request.timestamp + self.port.latency
        if self._last_forward is not None:
            time = max(time, self._last_forward + self.port.min_gap)
        return time

    def record_forward(self, time: int) -> None:
        self._last_forward = time


class SoCSimulator:
    """Drives several devices into one shared memory system."""

    def __init__(
        self,
        config: Optional[MemoryConfig] = None,
        port_config: Optional[CrossbarConfig] = None,
    ):
        self.memory = MemorySystem(config)
        self.memory.on_request_complete = self._on_request_complete
        self.port_config = port_config if port_config is not None else CrossbarConfig()
        self._streams: List[_DeviceStream] = []
        self._stats: Dict[str, DeviceStats] = {}
        self._request_owner: Dict[int, str] = {}

    def _on_request_complete(self, request_id: int, latency: int) -> None:
        owner = self._request_owner.pop(request_id, None)
        if owner is not None:
            stats = self._stats[owner]
            stats.latency_sum += latency
            stats.latency_count += 1

    def add_device(self, name: str, source: Source, seed: int = 0) -> None:
        """Attach a device by name; ``source`` is a trace or a profile."""
        if name in self._stats:
            raise ValueError(f"duplicate device name {name!r}")
        self._streams.append(_DeviceStream(name, source, seed, self.port_config))
        self._stats[name] = DeviceStats(name=name)

    def run(self) -> SoCResult:
        """Interleave all devices in global time order and drain."""
        if not self._streams:
            raise ValueError("no devices attached")

        # Merge streams by (forward time). Each heap entry carries the
        # device index so ties are deterministic.
        heap: List[tuple] = []
        for index, stream in enumerate(self._streams):
            request = stream.next_request()
            if request is not None:
                heapq.heappush(
                    heap, (stream.forward_time(request), index, request)
                )

        while heap:
            forward_time, index, request = heapq.heappop(heap)
            stream = self._streams[index]
            stats = self._stats[stream.name]

            # The shared port serializes: re-evaluate against the global
            # last-accept (MemorySystem clamps internally as well).
            accept = self.memory.submit(
                request,
                at_time=max(forward_time, self._min_accept_time()),
                injected_at=request.timestamp,
            )
            self._request_owner[self.memory.last_request_id] = stream.name
            stream.record_forward(accept)

            stats.requests += 1
            stats.reads += request.is_read
            stats.writes += request.is_write
            stats.bytes_transferred += request.size
            stats.backpressure_delay += accept - forward_time

            nxt = stream.next_request()
            if nxt is not None:
                heapq.heappush(heap, (stream.forward_time(nxt), index, nxt))

        self.memory.drain()
        return SoCResult(memory=self.memory.stats, devices=dict(self._stats))

    def _min_accept_time(self) -> int:
        return self.memory.last_accept_time  # shared in-order port


def run_soc(
    devices: Dict[str, Source],
    config: Optional[MemoryConfig] = None,
    seed: int = 0,
) -> SoCResult:
    """Convenience wrapper: run a dict of named sources to completion."""
    simulator = SoCSimulator(config)
    for offset, (name, source) in enumerate(sorted(devices.items())):
        simulator.add_device(name, source, seed=seed + offset)
    return simulator.run()


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Merge several time-sorted traces into one global-time trace."""
    merged = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda r: r.timestamp)
    return Trace(merged)
