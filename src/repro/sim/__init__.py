"""Drivers wiring traces and profiles into the simulators."""

from .cache_driver import CacheRunResult, run_cache_trace
from .driver import simulate_profile, simulate_synthetic, simulate_trace

__all__ = [
    "CacheRunResult",
    "run_cache_trace",
    "simulate_profile",
    "simulate_synthetic",
    "simulate_trace",
]
