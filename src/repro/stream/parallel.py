"""Sharded streaming profile build across the worker pool.

The map-reduce structure of :class:`ProfilePartial` makes the streaming
build parallel for free: the parent reads column blocks off disk,
groups them into contiguous shards, and each worker folds one shard
into a partial at its stream offset. Partials come back in submission
order and merge associatively into the offset-0 root, so the result is
bit-identical to the sequential build (and the single-pass one).

In-flight shards are bounded by the pool width, so parent memory stays
O(in-flight shards), not O(trace). Workers come from
:func:`repro.eval.parallel.make_pool` — the same fork-preferred pool
the experiment runners use, with observability disabled in workers.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..core.columnar import ColumnarTrace
from ..core.hierarchy import HierarchyConfig, two_level_ts
from .partial import ProfilePartial
from .profiler import build_profile_streaming
from .reader import DEFAULT_BLOCK_REQUESTS, iter_blocks

__all__ = ["build_profile_sharded"]


def _build_shard(
    config: HierarchyConfig,
    blocks: List[ColumnarTrace],
    offset: int,
    origin: int,
    backend: Optional[str],
) -> ProfilePartial:
    """Worker: fold one contiguous shard into a partial at ``offset``."""
    partial = ProfilePartial(config, backend=backend, offset=offset, origin=origin)
    for block in blocks:
        partial.feed(block)
    return partial


def _shards(
    blocks: Iterable[ColumnarTrace], shard_requests: int
) -> Iterator[Tuple[List[ColumnarTrace], int, int]]:
    """Group consecutive blocks into ``(blocks, offset, origin)`` shards."""
    shard: List[ColumnarTrace] = []
    total = 0
    offset = 0
    origin = None
    for block in blocks:
        if not len(block):
            continue
        if origin is None:
            origin = int(block.timestamps[0])
        shard.append(block)
        total += len(block)
        if total >= shard_requests:
            yield shard, offset, origin
            offset += total
            shard = []
            total = 0
    if shard:
        yield shard, offset, origin


def build_profile_sharded(
    path: Union[str, Path],
    config: Optional[HierarchyConfig] = None,
    *,
    name: str = "",
    jobs: Optional[int] = None,
    block_requests: int = DEFAULT_BLOCK_REQUESTS,
    shard_requests: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Stream a trace file into a profile using ``jobs`` workers.

    ``jobs <= 1`` (or a one-shard trace) degenerates to the sequential
    :func:`build_profile_streaming`. ``shard_requests`` controls the
    work unit handed to each worker (default: 8 blocks' worth).
    """
    from ..eval.parallel import default_processes, make_pool

    if config is None:
        config = two_level_ts()
    processes = default_processes() if jobs is None else jobs
    if processes <= 1:
        return build_profile_streaming(
            iter_blocks(path, block_requests), config, name=name, backend=backend
        )
    if shard_requests is None:
        shard_requests = block_requests * 8
    elif shard_requests <= 0:
        raise ValueError(f"shard_requests must be positive, got {shard_requests}")

    root = ProfilePartial(config, name=name, backend=backend)
    pending: deque = deque()
    max_inflight = processes + 2
    with make_pool(processes) as pool:
        for shard, offset, origin in _shards(
            iter_blocks(path, block_requests), shard_requests
        ):
            pending.append(
                pool.submit(_build_shard, config, shard, offset, origin, backend)
            )
            while len(pending) >= max_inflight:
                root.merge(pending.popleft().result())
        while pending:
            root.merge(pending.popleft().result())
    return root.finish()
