"""Chunked trace writing: column blocks to disk through ``store.atomic``.

:class:`TraceBlockWriter` accepts :class:`ColumnarTrace` blocks and
produces files byte-identical to ``Trace.save_binary``/``save_csv`` —
same formats, same deterministic gzip container (``mtime=0``; the
incremental compressor is the exact codec ``gzip.compress(mtime=0)``
uses) — without ever holding the whole trace or payload in memory. All
bytes go through :class:`~repro.store.atomic.AtomicFileWriter`, so a
crash mid-write never leaves a truncated trace at the destination.

The binary header stores the request count up front. When
``expected_requests`` is known the header is written first and verified
at close; otherwise a plain ``.mtr`` back-patches the header before the
atomic rename, and a ``.mtr.gz`` spools raw records to a temp file and
recompresses them behind the finalized header at close (a gzip stream
cannot be patched in place).
"""

from __future__ import annotations

import struct
import tempfile
import zlib
from pathlib import Path
from typing import Optional, Union

from ..core.columnar import ColumnarTrace, numpy_or_none
from ..core.trace import _BINARY_MAGIC, _RECORD
from ..store.atomic import AtomicFileWriter
from .reader import BINARY_SUFFIXES, CSV_SUFFIXES, _record_dtype

__all__ = ["TraceBlockWriter"]

_CSV_HEADER = b"timestamp,address,operation,size\n"
_COPY_BYTES = 1 << 20


class _GzipSink:
    """Incremental gzip writer, byte-identical to ``gzip.compress(mtime=0)``.

    ``gzip.compress`` with ``mtime=0`` delegates to zlib's gzip
    container (``wbits=31``); feeding the same bytes through one
    ``compressobj`` produces the same output, chunk sizes included.
    """

    def __init__(self, handle):
        self._handle = handle
        self._compressor = zlib.compressobj(9, zlib.DEFLATED, 31)

    def write(self, data: bytes) -> None:
        chunk = self._compressor.compress(data)
        if chunk:
            self._handle.write(chunk)

    def finish(self) -> None:
        self._handle.write(self._compressor.flush())


class TraceBlockWriter:
    """Write a trace block by block, atomically, in any on-disk format.

    Feed blocks with :meth:`write_block`; the output appears at ``path``
    only on :meth:`close` (or a clean context-manager exit). On error —
    including an ``expected_requests`` mismatch — the destination is
    left untouched.
    """

    def __init__(self, path: Union[str, Path], expected_requests: Optional[int] = None):
        name = str(path)
        if name.endswith(CSV_SUFFIXES):
            self._binary = False
        elif name.endswith(BINARY_SUFFIXES):
            self._binary = True
        else:
            raise ValueError(
                f"{path}: unknown trace suffix; expected one of "
                f"{CSV_SUFFIXES + BINARY_SUFFIXES}"
            )
        if expected_requests is not None and expected_requests < 0:
            raise ValueError(
                f"expected_requests must be non-negative, got {expected_requests}"
            )
        self.path = Path(path)
        self.expected_requests = expected_requests
        self.requests_written = 0
        self.bytes_written = 0
        self._gzipped = name.endswith(".gz")
        self._closed = False
        self._spool = None
        self._atomic = AtomicFileWriter(path)
        try:
            self._sink = _GzipSink(self._atomic) if self._gzipped else self._atomic
            if self._binary:
                if self._gzipped and expected_requests is None:
                    # Count unknown and the header is inside the gzip
                    # stream: spool raw records, compress at close.
                    self._spool = tempfile.TemporaryFile()
                else:
                    self._sink.write(_BINARY_MAGIC)
                    self._sink.write(struct.pack("<Q", expected_requests or 0))
            else:
                self._sink.write(_CSV_HEADER)
        except BaseException:
            self._atomic.abort()
            raise

    # -- writing ---------------------------------------------------------------

    def write_block(self, block: ColumnarTrace) -> None:
        if self._closed:
            raise RuntimeError(f"{self.path}: writer is closed")
        if not len(block):
            return
        if self._binary:
            payload = _pack_records(block)
            if self._spool is not None:
                self._spool.write(payload)
            else:
                self._sink.write(payload)
        else:
            self._sink.write(_format_csv(block))
        self.requests_written += len(block)

    # -- finalization ----------------------------------------------------------

    def close(self) -> int:
        """Finalize and atomically publish; returns the file size."""
        if self._closed:
            return self.bytes_written
        try:
            if (
                self.expected_requests is not None
                and self.requests_written != self.expected_requests
            ):
                raise ValueError(
                    f"{self.path}: wrote {self.requests_written} requests, "
                    f"expected {self.expected_requests}"
                )
            if self._binary and self._spool is not None:
                self._sink.write(_BINARY_MAGIC)
                self._sink.write(struct.pack("<Q", self.requests_written))
                self._spool.seek(0)
                while True:
                    chunk = self._spool.read(_COPY_BYTES)
                    if not chunk:
                        break
                    self._sink.write(chunk)
            elif self._binary and self.expected_requests is None:
                # Plain .mtr: back-patch the count before the rename.
                self._atomic.seek(len(_BINARY_MAGIC))
                self._atomic.write(struct.pack("<Q", self.requests_written))
            if self._gzipped:
                self._sink.finish()
            self.bytes_written = self._atomic.commit()
            self._closed = True
            return self.bytes_written
        except BaseException:
            self.abort()
            raise
        finally:
            if self._spool is not None:
                self._spool.close()
                self._spool = None

    def abort(self) -> None:
        """Discard everything; the destination is left untouched."""
        if self._closed:
            return
        self._closed = True
        if self._spool is not None:
            self._spool.close()
            self._spool = None
        self._atomic.abort()

    def __enter__(self) -> "TraceBlockWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _pack_records(block: ColumnarTrace) -> bytes:
    np = numpy_or_none()
    if np is not None and isinstance(block.timestamps, np.ndarray):
        records = np.empty(len(block), dtype=_record_dtype(np))
        records["timestamp"] = block.timestamps
        records["address"] = block.addresses
        records["operation"] = block.ops
        records["size"] = block.sizes
        return records.tobytes()
    pack = _RECORD.pack
    return b"".join(
        pack(t, a, o, s)
        for t, a, o, s in zip(
            block.timestamps.tolist(),
            block.addresses.tolist(),
            block.ops.tolist(),
            block.sizes.tolist(),
        )
    )


def _format_csv(block: ColumnarTrace) -> bytes:
    lines = [
        f"{t},{a:#x},{'W' if o else 'R'},{s}\n"
        for t, a, o, s in zip(
            block.timestamps.tolist(),
            block.addresses.tolist(),
            block.ops.tolist(),
            block.sizes.tolist(),
        )
    ]
    return "".join(lines).encode("ascii")
