"""Mergeable sufficient statistics for the out-of-core profile build.

The single-pass profiler (:mod:`repro.core.profiler`) needs the whole
trace in memory. This module decomposes the build into *partials* that
consume fixed-size column blocks and merge associatively, so a profile
can be computed map-reduce style: feed blocks into one partial
(sequential streaming) or into several offset shards merged in stream
order (parallel streaming). The reduced profile is **bit-identical** to
the single-pass output down to serialized bytes — including Markov
transition-dict insertion order, which serialization's state numbering
depends on.

Three accumulation modes, picked from the hierarchy's outermost layer:

``stats``
    A single temporal layer: every leaf is one temporal bin, so each
    open bin is tracked as a :class:`LeafPartial` of true sufficient
    statistics (first/last values, running region, transition counts).
    Memory is O(block + unique values), independent of bin length.

``interval``
    A temporal layer above further layers (the paper's 2L-TS/2L-RS and
    micro/macro configurations). Dynamic spatial partitioning needs a
    whole interval at once (Alg. 1 sorts the interval), so the open
    outer bin's raw blocks are buffered and fitted on close via
    :func:`repro.core.profiler.fit_interval_leaves`. Memory is
    O(interval), not O(trace).

``monolith``
    A spatial outermost layer: the partition depends on every request,
    so blocks are buffered and the single-pass builder runs at
    :meth:`ProfilePartial.finish`. Documented fallback — it streams the
    *input*, not the working set.

Chunk-boundary stitching: a value sequence split across blocks or
shards is rebuilt exactly. Within one partial the previous block's last
timestamp/address carry the delta/stride across the boundary; across
two partials :meth:`McCPartial.merge` applies the boundary transition
(left's last value → right's first value) *before* folding the right
side's transition rows, which provably reproduces the global
first-occurrence insertion order (dict item assignment preserves
existing key positions and appends new keys).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..core.columnar import ColumnarTrace, numpy_or_none
from ..core.hierarchy import HierarchyConfig, SpatialLayer
from ..core.leaf import LeafModel, McCAddressModel, McCOperationModel
from ..core.markov import MarkovChain
from ..core.mcc import CONSTANT, MARKOV, McCModel
from ..core.profiler import _build_profile_inmemory, fit_interval_leaves
from ..core.request import AddressRange

__all__ = ["McCPartial", "LeafPartial", "ProfilePartial"]


class McCPartial:
    """Mergeable sufficient statistics for one :class:`McCModel` feature.

    Feeding values one at a time, or merging a partial fed from the
    continuation of the same sequence, accumulates exactly the state
    :meth:`McCModel.fit` derives from the full sequence: count, first
    value, constancy, and the transition multiset in first-occurrence
    insertion order.
    """

    __slots__ = ("count", "first", "last", "constant", "transitions")

    def __init__(self):
        self.count = 0
        self.first = None
        self.last = None
        self.constant = True
        self.transitions: Dict = {}

    def feed_one(self, value) -> None:
        if self.count == 0:
            self.first = value
            self.last = value
            self.count = 1
            return
        if value != self.first:
            self.constant = False
        row = self.transitions.get(self.last)
        if row is None:
            self.transitions[self.last] = row = Counter()
        row[value] += 1
        self.last = value
        self.count += 1

    def merge(self, other: "McCPartial") -> "McCPartial":
        """Absorb a partial fed from the continuation of this sequence.

        ``other`` is consumed: its rows are adopted in place and it must
        not be used afterwards. The boundary transition (``self.last`` →
        ``other.first``) is recorded *first*; it precedes every right-side
        transition in sequence order, so applying it before folding
        ``other``'s rows keeps source keys and row targets in global
        first-occurrence order.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.first = other.first
            self.last = other.last
            self.constant = other.constant
            self.transitions = other.transitions
            return self
        if not other.constant or other.first != self.first:
            self.constant = False
        row = self.transitions.get(self.last)
        if row is None:
            self.transitions[self.last] = row = Counter()
        row[other.first] += 1
        for source, other_row in other.transitions.items():
            mine = self.transitions.get(source)
            if mine is None:
                self.transitions[source] = other_row
            else:
                for target, count in other_row.items():
                    mine[target] += count
        self.last = other.last
        self.count += other.count
        return self

    def finalize(self) -> McCModel:
        """The fitted model — bit-identical to :meth:`McCModel.fit`."""
        if self.count == 0:
            return McCModel(CONSTANT, 0, constant=None)
        if self.constant:
            return McCModel(CONSTANT, self.count, constant=self.first)
        return McCModel(
            MARKOV,
            self.count,
            chain=MarkovChain(self.first, self.transitions, self.count),
        )


class LeafPartial:
    """Mergeable sufficient statistics for one all-McC leaf model.

    Used by the ``stats`` mode, where one temporal bin is one leaf. The
    delta-time and stride features are sequences of *differences*, so
    the previous request's timestamp/address are carried across block
    and shard boundaries to rebuild the exact difference sequence.
    """

    __slots__ = (
        "count",
        "start_time",
        "first_address",
        "region_start",
        "region_end",
        "last_timestamp",
        "last_address",
        "delta",
        "size",
        "stride",
        "op",
    )

    def __init__(self):
        self.count = 0
        self.start_time = None
        self.first_address = None
        self.region_start = None
        self.region_end = None
        self.last_timestamp = None
        self.last_address = None
        self.delta = McCPartial()
        self.size = McCPartial()
        self.stride = McCPartial()
        self.op = McCPartial()

    def feed_block(self, block: ColumnarTrace) -> None:
        """Consume the leaf's next requests (Python-int domain).

        ``tolist()`` converts column values to plain ints so arbitrary
        magnitudes (and the serialized JSON) never see numpy scalars.
        """
        timestamps = block.timestamps.tolist()
        if not timestamps:
            return
        addresses = block.addresses.tolist()
        sizes = block.sizes.tolist()
        ops = block.ops.tolist()
        start = 0
        if self.count == 0:
            self.start_time = timestamps[0]
            self.first_address = addresses[0]
            self.region_start = addresses[0]
            self.region_end = addresses[0] + sizes[0]
            self.size.feed_one(sizes[0])
            self.op.feed_one(ops[0])
            self.last_timestamp = timestamps[0]
            self.last_address = addresses[0]
            self.count = 1
            start = 1
        for i in range(start, len(timestamps)):
            timestamp = timestamps[i]
            address = addresses[i]
            size = sizes[i]
            self.delta.feed_one(timestamp - self.last_timestamp)
            self.stride.feed_one(address - self.last_address)
            self.size.feed_one(size)
            self.op.feed_one(ops[i])
            if address < self.region_start:
                self.region_start = address
            end = address + size
            if end > self.region_end:
                self.region_end = end
            self.last_timestamp = timestamp
            self.last_address = address
        self.count += len(timestamps) - start

    def merge(self, other: "LeafPartial") -> "LeafPartial":
        """Absorb the continuation of this leaf from another partial."""
        if other.count == 0:
            return self
        if self.count == 0:
            for slot in self.__slots__:
                setattr(self, slot, getattr(other, slot))
            return self
        self.delta.feed_one(other.start_time - self.last_timestamp)
        self.delta.merge(other.delta)
        self.stride.feed_one(other.first_address - self.last_address)
        self.stride.merge(other.stride)
        self.size.merge(other.size)
        self.op.merge(other.op)
        if other.region_start < self.region_start:
            self.region_start = other.region_start
        if other.region_end > self.region_end:
            self.region_end = other.region_end
        self.last_timestamp = other.last_timestamp
        self.last_address = other.last_address
        self.count += other.count
        return self

    def finalize(self, region: Optional[AddressRange] = None) -> LeafModel:
        """The fitted leaf — bit-identical to :meth:`LeafModel.fit`."""
        if self.count == 0:
            raise ValueError("cannot fit a leaf model to zero requests")
        leaf_region = (
            region
            if region is not None
            else AddressRange(self.region_start, self.region_end)
        )
        return LeafModel(
            start_time=self.start_time,
            count=self.count,
            region=leaf_region,
            delta_time_model=self.delta.finalize(),
            size_model=self.size.finalize(),
            address_model=McCAddressModel(
                self.first_address, leaf_region, self.stride.finalize()
            ),
            operation_model=McCOperationModel(self.op.finalize()),
        )


class _Span:
    """One open (or boundary-held) outer temporal bin.

    ``payload`` is a :class:`LeafPartial` in ``stats`` mode and a list
    of raw column blocks in ``interval`` mode.
    """

    __slots__ = ("bin", "payload")

    def __init__(self, bin_id: int, payload):
        self.bin = bin_id
        self.payload = payload


class ProfilePartial:
    """The map side of the streaming profile build.

    One partial covers a contiguous run of the trace starting at request
    ``offset``. Feed it column blocks in stream order, merge successor
    partials in stream order, and :meth:`finish` the ``offset == 0``
    partial to obtain the profile.

    A partial with ``offset > 0`` may start mid-bin, so its first span
    is held un-fitted (``head``) until :meth:`merge` can decide whether
    it continues the predecessor's open span; such a partial can never
    :meth:`finish` on its own. With a ``cycle_count`` outer layer the
    global anchor timestamp (``origin``) must be supplied, because bin
    boundaries are measured from the *stream's* first request.
    """

    def __init__(
        self,
        config: HierarchyConfig,
        name: str = "",
        backend: Optional[str] = None,
        offset: int = 0,
        origin: Optional[int] = None,
    ):
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.config = config
        self.layers = config.layers
        self.name = name
        self.backend = backend
        self.offset = offset
        self.origin = origin
        self.count = 0
        self.first_timestamp: Optional[int] = None
        self.last_timestamp: Optional[int] = None
        self.models: List[LeafModel] = []
        self.head: Optional[_Span] = None
        self.open: Optional[_Span] = None
        self._blocks: List[ColumnarTrace] = []

        outer = self.layers[0]
        if isinstance(outer, SpatialLayer):
            self.mode = "monolith"
        elif len(self.layers) == 1:
            self.mode = "stats"
        else:
            self.mode = "interval"

        if self.mode == "monolith":
            self._lead_pending = False
        elif outer.kind == "request_count":
            # A shard starting exactly on a bin boundary cannot continue
            # the predecessor's span; only unaligned starts are held.
            self._lead_pending = offset > 0 and offset % outer.size != 0
        else:
            self._lead_pending = offset > 0
            if offset > 0 and origin is None:
                raise ValueError(
                    "a cycle_count shard with offset > 0 needs the stream's "
                    "origin timestamp"
                )

    # -- feeding ---------------------------------------------------------------

    def feed(self, block: ColumnarTrace) -> "ProfilePartial":
        """Consume the next column block of this partial's run."""
        if len(block) == 0:
            return self
        if not block.is_sorted():
            raise ValueError("requests must be sorted by timestamp")
        first_ts = int(block.timestamps[0])
        last_ts = int(block.timestamps[-1])
        if self.last_timestamp is not None and first_ts < self.last_timestamp:
            raise ValueError("requests must be sorted by timestamp")
        if self.first_timestamp is None:
            self.first_timestamp = first_ts
        if self.origin is None:
            self.origin = first_ts

        if self.mode == "monolith":
            self._blocks.append(block)
            self.count += len(block)
            self.last_timestamp = last_ts
            return self

        closed: List[_Span] = []
        for bin_id, lo, hi in self._segment(block):
            sub = block[lo:hi]
            if self.open is not None and self.open.bin == bin_id:
                self._span_extend(self.open, sub)
            else:
                if self.open is not None:
                    self._close_span(self.open, closed)
                self.open = self._new_span(bin_id, sub)
        self._flush_closed(closed)
        self.count += len(block)
        self.last_timestamp = last_ts
        return self

    def _segment(self, block: ColumnarTrace):
        """``(bin_id, start, stop)`` runs of the outer temporal layer."""
        outer = self.layers[0]
        n = len(block)
        if outer.kind == "request_count":
            size = outer.size
            position = self.offset + self.count
            runs = []
            start = 0
            while start < n:
                bin_id = (position + start) // size
                stop = min(n, (bin_id + 1) * size - position)
                runs.append((bin_id, start, stop))
                start = stop
            return runs
        size = outer.size
        origin = self.origin
        np = numpy_or_none()
        timestamps = block.timestamps
        if np is not None and isinstance(timestamps, np.ndarray):
            # Pure uint64 arithmetic: timestamps are monotonic and
            # >= origin, so the subtraction can never wrap.
            bins = (timestamps - np.uint64(origin)) // np.uint64(size)
            breaks = (np.flatnonzero(bins[1:] != bins[:-1]) + 1).tolist()
            edges = [0] + breaks + [n]
            return [
                (int(bins[edges[i]]), edges[i], edges[i + 1])
                for i in range(len(edges) - 1)
            ]
        runs = []
        start = 0
        current = None
        for i, timestamp in enumerate(timestamps):
            bin_id = (int(timestamp) - origin) // size
            if bin_id != current:
                if current is not None:
                    runs.append((current, start, i))
                current = bin_id
                start = i
        runs.append((current, start, n))
        return runs

    # -- span plumbing ---------------------------------------------------------

    def _new_span(self, bin_id: int, sub: ColumnarTrace) -> _Span:
        if self.mode == "stats":
            payload = LeafPartial()
            payload.feed_block(sub)
            return _Span(bin_id, payload)
        return _Span(bin_id, [sub])

    def _span_extend(self, span: _Span, sub: ColumnarTrace) -> None:
        if self.mode == "stats":
            span.payload.feed_block(sub)
        else:
            span.payload.append(sub)

    def _span_join(self, span: _Span, other: _Span) -> None:
        if self.mode == "stats":
            span.payload.merge(other.payload)
        else:
            span.payload.extend(other.payload)

    def _close_span(self, span: _Span, closed: List[_Span]) -> None:
        if self._lead_pending:
            self.head = span
            self._lead_pending = False
        else:
            closed.append(span)

    def _flush_closed(self, closed: List[_Span]) -> None:
        if not closed:
            return
        if self.mode == "stats":
            for span in closed:
                self.models.append(span.payload.finalize())
            return
        intervals = [
            span.payload[0]
            if len(span.payload) == 1
            else ColumnarTrace.concat(span.payload)
            for span in closed
        ]
        self.models.extend(
            fit_interval_leaves(intervals, self.layers[1:], backend=self.backend)
        )

    # -- reduction -------------------------------------------------------------

    def merge(self, other: "ProfilePartial") -> "ProfilePartial":
        """Absorb the successor partial (stream order; consumes ``other``)."""
        if other.config.describe() != self.config.describe():
            raise ValueError(
                "cannot merge partials with different hierarchies: "
                f"{self.config.describe()!r} vs {other.config.describe()!r}"
            )
        if other.count == 0:
            return self
        if other.offset != self.offset + self.count:
            raise ValueError(
                "partials must be merged in stream order: expected offset "
                f"{self.offset + self.count}, got {other.offset}"
            )
        if self.count == 0:
            for attr in (
                "origin",
                "count",
                "first_timestamp",
                "last_timestamp",
                "models",
                "head",
                "open",
                "_blocks",
                "_lead_pending",
            ):
                setattr(self, attr, getattr(other, attr))
            return self
        if other.first_timestamp < self.last_timestamp:
            raise ValueError("requests must be sorted by timestamp")

        if self.mode == "monolith":
            self._blocks.extend(other._blocks)
            self.count += other.count
            self.last_timestamp = other.last_timestamp
            return self

        outer = self.layers[0]
        if outer.kind == "cycle_count" and other.origin != self.origin:
            raise ValueError(
                "cycle_count shards must share the stream's origin timestamp: "
                f"{self.origin} vs {other.origin}"
            )

        if other._lead_pending:
            lead, trailing = other.open, None
        else:
            lead, trailing = other.head, other.open

        closed: List[_Span] = []
        if lead is not None:
            if self.open is not None and self.open.bin == lead.bin:
                self._span_join(self.open, lead)
                if not other._lead_pending:
                    # The joined span closed inside ``other``.
                    self._close_span(self.open, closed)
                    self.open = None
            else:
                if self.open is not None:
                    self._close_span(self.open, closed)
                    self.open = None
                if other._lead_pending:
                    self.open = lead
                else:
                    self._close_span(lead, closed)
        elif self.open is not None:
            # ``other`` starts exactly on a bin boundary (aligned
            # request_count shard): our open span cannot continue.
            self._close_span(self.open, closed)
            self.open = None
        self._flush_closed(closed)
        self.models.extend(other.models)
        if trailing is not None:
            self.open = trailing
        self.count += other.count
        self.last_timestamp = other.last_timestamp
        return self

    def finish(self):
        """The reduced :class:`~repro.core.profile.Profile`.

        Only the ``offset == 0`` partial — after every successor has
        been merged in — can finish; a shard's head span is otherwise
        still waiting for its predecessor.
        """
        from ..core.profile import Profile

        if self.offset != 0:
            raise ValueError(
                "only the offset-0 partial can finish; merge shards in "
                "stream order first"
            )
        if self.mode == "monolith":
            if not self._blocks:
                return Profile([], hierarchy=self.config.describe(), name=self.name)
            columns = (
                self._blocks[0]
                if len(self._blocks) == 1
                else ColumnarTrace.concat(self._blocks)
            )
            return _build_profile_inmemory(
                columns, self.config, name=self.name, backend=self.backend
            )
        closed: List[_Span] = []
        if self.open is not None:
            self._close_span(self.open, closed)
            self.open = None
        self._flush_closed(closed)
        return Profile(self.models, hierarchy=self.config.describe(), name=self.name)
