"""Chunked trace reading: fixed-size column blocks straight from disk.

:func:`iter_blocks` yields consecutive :class:`ColumnarTrace` blocks
from a ``.mtr``/``.csv`` file (plain or gzipped) without materializing
the full trace — peak memory is O(block), so traces far larger than RAM
stream through the profiler and the replay engines. Concatenating the
blocks reproduces ``Trace.load_binary``/``load_csv`` exactly, including
every validation error: same suffix dispatch as :mod:`repro.tools.trace`
``load_any``, gzip sniffed from magic bytes, and the same
:class:`CorruptArtifactError` messages — plus the byte offset of the
first missing or corrupt byte, which the whole-file loaders could not
name.
"""

from __future__ import annotations

import gzip
import io
import struct
import zlib
from pathlib import Path
from typing import Iterator, Union

from ..core.columnar import ColumnarTrace, numpy_or_none
from ..core.errors import CorruptArtifactError
from ..core.ioutil import GZIP_MAGIC
from ..core.request import Operation
from ..core.trace import _BINARY_MAGIC, _RECORD

__all__ = ["DEFAULT_BLOCK_REQUESTS", "iter_blocks"]

DEFAULT_BLOCK_REQUESTS = 8192

CSV_SUFFIXES = (".csv", ".csv.gz")
BINARY_SUFFIXES = (".mtr", ".mtr.gz")


def iter_blocks(
    path: Union[str, Path], block_requests: int = DEFAULT_BLOCK_REQUESTS
) -> Iterator[ColumnarTrace]:
    """Iterate a trace file as column blocks of ``block_requests``.

    The format is picked from the suffix (``.csv``/``.csv.gz``/
    ``.mtr``/``.mtr.gz``); gzip compression is sniffed from the file's
    magic bytes regardless of suffix, like the whole-file loaders.
    """
    if block_requests <= 0:
        raise ValueError(f"block_requests must be positive, got {block_requests}")
    name = str(path)
    if name.endswith(CSV_SUFFIXES):
        binary = False
    elif name.endswith(BINARY_SUFFIXES):
        binary = True
    else:
        raise ValueError(
            f"{path}: unknown trace suffix; expected one of "
            f"{CSV_SUFFIXES + BINARY_SUFFIXES}"
        )
    return _iter_file(path, binary, block_requests)


def _iter_file(path, binary: bool, block_requests: int) -> Iterator[ColumnarTrace]:
    with open(path, "rb") as raw:
        head = raw.read(len(GZIP_MAGIC))
        raw.seek(0)
        if head == GZIP_MAGIC:
            stream = gzip.GzipFile(fileobj=raw, mode="rb")
        else:
            stream = raw
        try:
            if binary:
                yield from _iter_binary(path, raw, stream, block_requests)
            else:
                yield from _iter_csv(path, raw, stream, block_requests)
        finally:
            if stream is not raw:
                stream.close()


def _gzip_error(path, raw, error) -> CorruptArtifactError:
    return CorruptArtifactError(
        path,
        "truncated or corrupt gzip stream at compressed byte offset "
        f"{raw.tell()} ({error})",
    )


def _read_exact(path, raw, stream, need: int, offset: int, what: str) -> bytes:
    """Read exactly ``need`` payload bytes starting at payload ``offset``."""
    try:
        data = stream.read(need)
    except (EOFError, OSError, zlib.error) as error:
        raise _gzip_error(path, raw, error) from error
    if len(data) != need:
        raise CorruptArtifactError(
            path,
            f"truncated {what}: wanted {need} bytes at byte offset {offset}, "
            f"got {len(data)}",
        )
    return data


# -- binary (.mtr) -------------------------------------------------------------


def _iter_binary(path, raw, stream, block_requests: int) -> Iterator[ColumnarTrace]:
    header = _read_exact(path, raw, stream, 12, 0, "binary trace header")
    if header[:4] != _BINARY_MAGIC:
        raise ValueError(f"{path}: not a Mocktails binary trace")
    (count,) = struct.unpack_from("<Q", header, 4)
    np = numpy_or_none()
    offset = 12
    remaining = count
    while remaining:
        take = min(block_requests, remaining)
        payload = _read_exact(
            path, raw, stream, take * _RECORD.size, offset, "binary trace block"
        )
        offset += len(payload)
        remaining -= take
        yield _decode_records(path, np, payload, take)


def _record_dtype(np):
    return np.dtype(
        [
            ("timestamp", "<u8"),
            ("address", "<u8"),
            ("operation", "u1"),
            ("size", "<u4"),
        ]
    )


def _decode_records(path, np, payload: bytes, count: int) -> ColumnarTrace:
    try:
        if np is not None:
            records = np.frombuffer(payload, dtype=_record_dtype(np), count=count)
            return ColumnarTrace(
                records["timestamp"].astype(np.uint64),
                records["address"].astype(np.uint64),
                records["size"].astype(np.uint32),
                records["operation"].astype(np.uint8),
            )
        timestamps, addresses, sizes, ops = [], [], [], []
        for timestamp, address, op, size in _RECORD.iter_unpack(payload):
            timestamps.append(timestamp)
            addresses.append(address)
            ops.append(op)
            sizes.append(size)
        return ColumnarTrace(timestamps, addresses, sizes, ops)
    except ValueError as error:
        raise CorruptArtifactError(
            path, f"truncated or malformed binary trace ({error})"
        ) from error


# -- CSV -----------------------------------------------------------------------


def _iter_csv(path, raw, stream, block_requests: int) -> Iterator[ColumnarTrace]:
    text = io.TextIOWrapper(stream, encoding="ascii", errors="strict", newline="")
    line_no = 0

    def read_line() -> str:
        try:
            return text.readline()
        except UnicodeDecodeError as error:
            raise CorruptArtifactError(
                path, f"not an ASCII CSV trace ({error})"
            ) from error
        except (EOFError, OSError, zlib.error) as error:
            raise _gzip_error(path, raw, error) from error

    header = read_line()
    if not header.startswith("timestamp"):
        raise CorruptArtifactError(path, "missing CSV header")
    line_no = 1
    timestamps, addresses, sizes, ops = [], [], [], []
    while True:
        line = read_line()
        if not line:
            break
        line_no += 1
        stripped = line.strip()
        if not stripped:
            continue
        try:
            time_s, addr_s, op_s, size_s = stripped.split(",")
            timestamps.append(int(time_s))
            addresses.append(int(addr_s, 0))
            ops.append(int(Operation.parse(op_s)))
            sizes.append(int(size_s))
        except ValueError as error:
            raise CorruptArtifactError(
                path, f"malformed CSV record at line {line_no} ({error})"
            ) from error
        if len(timestamps) == block_requests:
            yield _csv_block(path, timestamps, addresses, sizes, ops)
            timestamps, addresses, sizes, ops = [], [], [], []
    if timestamps:
        yield _csv_block(path, timestamps, addresses, sizes, ops)


def _csv_block(path, timestamps, addresses, sizes, ops) -> ColumnarTrace:
    try:
        return ColumnarTrace(timestamps, addresses, sizes, ops)
    except ValueError as error:
        raise CorruptArtifactError(
            path, f"malformed CSV record ({error})"
        ) from error
