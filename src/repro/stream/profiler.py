"""Sequential streaming profile build: blocks in, profile out.

The one-process reduce loop over :class:`ProfilePartial`. For the
sharded multi-process variant see :mod:`repro.stream.parallel`; for the
block sources see :func:`repro.stream.iter_blocks` (disk) and
:meth:`ColumnarTrace.iter_blocks` /
:meth:`WorkloadGenerator.generate_blocks` (memory/generated).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .. import obs
from ..core.columnar import ColumnarTrace
from ..core.hierarchy import HierarchyConfig, two_level_ts
from .partial import ProfilePartial

__all__ = ["build_profile_streaming"]


def build_profile_streaming(
    blocks: Iterable[ColumnarTrace],
    config: Optional[HierarchyConfig] = None,
    *,
    name: str = "",
    backend: Optional[str] = None,
):
    """Build a profile from a stream of column blocks.

    Bit-identical to :func:`repro.core.profiler.build_profile` over the
    concatenated blocks, with peak memory O(block + open interval)
    instead of O(trace) (see :class:`ProfilePartial` for the per-mode
    bounds). Blocks must arrive in time order.
    """
    if config is None:
        config = two_level_ts()
    registry = obs.active()
    partial = ProfilePartial(config, name=name, backend=backend)
    for block in blocks:
        partial.feed(block)
        if registry is not None:
            registry.counter("stream.blocks").inc()
            registry.counter("stream.requests").inc(len(block))
    return partial.finish()
