"""``repro.stream`` — out-of-core streaming: chunked trace I/O and the
map-reduce profile build.

The in-memory pipeline caps trace size at available RAM. This package
removes that cap end to end:

* :func:`iter_blocks` — iterate a ``.mtr``/``.csv`` file (plain or gz)
  as fixed-size :class:`~repro.core.columnar.ColumnarTrace` blocks;
* :class:`TraceBlockWriter` — write blocks to any trace format through
  ``store.atomic`` (crash-safe, byte-identical to the one-shot savers);
* :class:`ProfilePartial` / :func:`build_profile_streaming` /
  :func:`build_profile_sharded` — the map-reduce profile build, merged
  output bit-identical to ``core/profiler.py`` down to serialized
  bytes;
* the ``MOCKTAILS_STREAM`` switch — route every
  :func:`~repro.core.profiler.build_profile` call through the streaming
  path (what ``python -m repro.eval --stream`` sets), with
  ``MOCKTAILS_STREAM_BLOCK_REQUESTS`` controlling the block size.

Streaming replay lives next to the engines it drives:
:func:`repro.sim.cache_driver.run_cache_blocks`,
:func:`repro.sim.driver.simulate_blocks` (which feeds blocks straight
into the batched memory-system engine, ``repro.dram.batched``, on the
columnar backend — no per-request expansion), and
:func:`repro.core.synthesis.synthesize_to_file`.
"""

from __future__ import annotations

import os
from typing import Optional

from .partial import LeafPartial, McCPartial, ProfilePartial
from .profiler import build_profile_streaming
from .reader import DEFAULT_BLOCK_REQUESTS, iter_blocks
from .writer import TraceBlockWriter

__all__ = [
    "DEFAULT_BLOCK_REQUESTS",
    "LeafPartial",
    "McCPartial",
    "ProfilePartial",
    "TraceBlockWriter",
    "build_profile_sharded",
    "build_profile_streaming",
    "iter_blocks",
    "set_stream_mode",
    "stream_block_requests",
    "stream_requested",
]

_STREAM_ENV = "MOCKTAILS_STREAM"
_BLOCK_ENV = "MOCKTAILS_STREAM_BLOCK_REQUESTS"
_OFF_VALUES = ("", "0", "false", "off", "no")


def stream_requested() -> bool:
    """Whether the ``MOCKTAILS_STREAM`` switch is on for this process."""
    return os.environ.get(_STREAM_ENV, "").strip().lower() not in _OFF_VALUES


def stream_block_requests() -> int:
    """The configured streaming block size (requests per block)."""
    raw = os.environ.get(_BLOCK_ENV, "").strip()
    if not raw:
        return DEFAULT_BLOCK_REQUESTS
    value = int(raw)
    if value <= 0:
        raise ValueError(
            f"${_BLOCK_ENV} must be a positive request count, got {raw!r}"
        )
    return value


def set_stream_mode(enabled: bool, block_requests: Optional[int] = None) -> None:
    """Select process-wide streaming (what ``--stream`` calls).

    Recorded in the environment so worker processes spawned by
    :mod:`repro.eval.parallel` inherit the choice, exactly like
    :func:`repro.core.columnar.set_backend`.
    """
    if block_requests is not None:
        if block_requests <= 0:
            raise ValueError(
                f"block_requests must be positive, got {block_requests}"
            )
        os.environ[_BLOCK_ENV] = str(block_requests)
    if enabled:
        os.environ[_STREAM_ENV] = "1"
    else:
        os.environ.pop(_STREAM_ENV, None)
        if block_requests is None:
            os.environ.pop(_BLOCK_ENV, None)


def __getattr__(name: str):
    # build_profile_sharded pulls in the eval worker-pool machinery;
    # loaded on first use so plain streaming stays import-light.
    if name == "build_profile_sharded":
        from .parallel import build_profile_sharded

        return build_profile_sharded
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
