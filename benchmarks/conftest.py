"""Shared configuration for the figure-reproduction benchmarks.

Scale is controlled by ``MOCKTAILS_BENCH_REQUESTS`` (default 8,000
requests per trace — minutes, same shapes). Set it higher (e.g. 100000)
to approach paper scale. Results are cached across benches in one
session, so figures sharing simulations (6/7/8/9/...) pay once.

Parallelism: pass ``--jobs N`` (or set ``MOCKTAILS_BENCH_JOBS=N``) to
fan the independent per-workload simulations out across N worker
processes before the figure benches aggregate them. Results are
bit-identical to serial runs — only the cache-fill order changes.
"""

import os

import pytest

BENCH_REQUESTS = int(os.environ.get("MOCKTAILS_BENCH_REQUESTS", "8000"))
SPEC_REQUESTS = int(os.environ.get("MOCKTAILS_BENCH_SPEC_REQUESTS", "12000"))


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=int(os.environ.get("MOCKTAILS_BENCH_JOBS", "1")),
        help="worker processes for the simulation fan-out (default 1 = serial)",
    )


@pytest.fixture(scope="session")
def bench_requests():
    return BENCH_REQUESTS


@pytest.fixture(scope="session")
def spec_requests():
    return SPEC_REQUESTS


@pytest.fixture(scope="session")
def bench_jobs(request):
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session", autouse=True)
def parallel_prewarm(request):
    """With --jobs > 1, compute the suite's simulation jobs up front.

    The figure benches then read everything from the warmed caches. The
    job list is derived from the benches actually collected, so running
    a single file only prewarms that file's simulations.
    """
    jobs = request.config.getoption("--jobs")
    if jobs <= 1:
        return
    from repro.eval.parallel import jobs_for, prewarm

    fig13_intervals = (100_000, 500_000, 1_000_000)  # see test_fig13_sensitivity
    spec_subset = (
        "gobmk", "h264ref", "hmmer", "libquantum", "mcf", "milc", "soplex", "zeusmp",
    )  # see test_fig14_cache_miss
    per_figure = {
        "fig6": jobs_for("fig6", BENCH_REQUESTS),
        "fig7": jobs_for("fig7", BENCH_REQUESTS),
        "fig8": jobs_for("fig8", BENCH_REQUESTS),
        "fig9": jobs_for("fig9", BENCH_REQUESTS),
        "fig10": jobs_for("fig10", BENCH_REQUESTS),
        "fig11": jobs_for("fig11", BENCH_REQUESTS),
        "fig12": jobs_for("fig12", BENCH_REQUESTS),
        "fig13": jobs_for("fig13", BENCH_REQUESTS, intervals=fig13_intervals),
        "fig14": jobs_for("fig14", SPEC_REQUESTS, benchmarks=spec_subset),
        "fig15": jobs_for("fig15", SPEC_REQUESTS),
        "fig16": jobs_for("fig16", SPEC_REQUESTS),
        "fig17": jobs_for("fig17", SPEC_REQUESTS),
    }
    collected = {item.nodeid for item in request.session.items}
    wanted = []
    for figure, figure_jobs in per_figure.items():
        padded = f"fig{int(figure[3:]):02d}"  # bench files use fig06..fig17
        if any(padded in nodeid for nodeid in collected):
            wanted.extend(figure_jobs)
    if wanted:
        prewarm(wanted, processes=jobs)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
