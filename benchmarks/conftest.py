"""Shared configuration for the figure-reproduction benchmarks.

Scale is controlled by ``MOCKTAILS_BENCH_REQUESTS`` (default 8,000
requests per trace — minutes, same shapes). Set it higher (e.g. 100000)
to approach paper scale. Results are cached across benches in one
session, so figures sharing simulations (6/7/8/9/...) pay once.
"""

import os

import pytest

BENCH_REQUESTS = int(os.environ.get("MOCKTAILS_BENCH_REQUESTS", "8000"))
SPEC_REQUESTS = int(os.environ.get("MOCKTAILS_BENCH_SPEC_REQUESTS", "12000"))


@pytest.fixture(scope="session")
def bench_requests():
    return BENCH_REQUESTS


@pytest.fixture(scope="session")
def spec_requests():
    return SPEC_REQUESTS


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
