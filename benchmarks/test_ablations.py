"""Ablation benches for the design choices DESIGN.md calls out."""

from collections import Counter

from repro.core.hierarchy import (
    HierarchyConfig,
    SpatialLayer,
    TemporalLayer,
    two_level_ts,
)
from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize, synthesize_transition_based
from repro.eval.comparison import baseline_trace
from repro.eval.metrics import percent_error
from repro.eval.reporting import format_table
from repro.sim.driver import simulate_trace

from conftest import run_once

WORKLOAD = "fbc-tiled1"


def _row_hit_error(trace, synthetic):
    base = simulate_trace(trace)
    synth = simulate_trace(synthetic)
    return (
        percent_error(synth.read_row_hits, base.read_row_hits),
        percent_error(synth.write_row_hits, base.write_row_hits),
    )


def test_ablation_temporal_vs_spatial_first(benchmark, bench_requests, capsys):
    """Paper Sec. III-D recommends partitioning temporally first."""
    trace = baseline_trace(WORKLOAD, bench_requests)

    def run():
        temporal_first = two_level_ts(500_000)
        spatial_first = HierarchyConfig(
            [SpatialLayer("dynamic"), TemporalLayer("cycle_count", 500_000)]
        )
        results = {}
        for label, config in (("T->S", temporal_first), ("S->T", spatial_first)):
            profile = build_profile(trace, config)
            synthetic = synthesize(profile, seed=1)
            results[label] = (_row_hit_error(trace, synthetic), len(profile))
        return results

    results = run_once(benchmark, run)
    rows = [
        [label, errors[0], errors[1], leaves]
        for label, (errors, leaves) in results.items()
    ]
    for (errors, _leaves) in results.values():
        assert errors[0] < 30 and errors[1] < 40
    with capsys.disabled():
        print("\n== Ablation: hierarchy order ==")
        print(format_table(["order", "rd row-hit err %", "wr row-hit err %", "leaves"], rows))


def test_ablation_strict_convergence(benchmark, bench_requests, capsys):
    """Without strict convergence, value multisets drift."""
    trace = baseline_trace(WORKLOAD, bench_requests)
    profile = build_profile(trace)

    def run():
        strict = synthesize(profile, seed=1, strict=True)
        loose = synthesize(profile, seed=1, strict=False)
        return strict, loose

    strict, loose = run_once(benchmark, run)
    assert strict.read_count() == trace.read_count()
    strict_drift = 0
    loose_drift = abs(loose.read_count() - trace.read_count())
    size_drift = sum(
        abs(count - Counter(r.size for r in trace)[size])
        for size, count in Counter(r.size for r in loose).items()
    )
    with capsys.disabled():
        print("\n== Ablation: strict convergence ==")
        print(
            format_table(
                ["mode", "read-count drift", "size-histogram drift"],
                [["strict", strict_drift, 0], ["sampled", loose_drift, size_drift]],
            )
        )


def test_ablation_dynamic_vs_fixed_spatial(benchmark, bench_requests, capsys):
    """DRAM-side comparison of dynamic vs fixed 4KB spatial partitioning."""
    trace = baseline_trace(WORKLOAD, bench_requests)

    def run():
        results = {}
        for label, spatial in (("dynamic", "dynamic"), ("fixed-4KB", "fixed")):
            profile = build_profile(trace, two_level_ts(500_000, spatial=spatial))
            synthetic = synthesize(profile, seed=1)
            results[label] = _row_hit_error(trace, synthetic)
        return results

    results = run_once(benchmark, run)
    rows = [[label, e[0], e[1]] for label, e in results.items()]
    with capsys.disabled():
        print("\n== Ablation: spatial partitioning scheme (DRAM) ==")
        print(format_table(["scheme", "rd row-hit err %", "wr row-hit err %"], rows))


def test_ablation_priority_queue_vs_transition(benchmark, bench_requests, capsys):
    """The paper's priority-queue injection vs a transition-model injector."""
    trace = baseline_trace(WORKLOAD, bench_requests)
    profile = build_profile(trace)

    def run():
        queue_trace = synthesize(profile, seed=1)
        transition_trace = synthesize_transition_based(profile, seed=1)
        return (
            _row_hit_error(trace, queue_trace),
            _row_hit_error(trace, transition_trace),
        )

    queue_errors, transition_errors = run_once(benchmark, run)
    with capsys.disabled():
        print("\n== Ablation: injection process ==")
        print(
            format_table(
                ["injector", "rd row-hit err %", "wr row-hit err %"],
                [
                    ["priority queue", queue_errors[0], queue_errors[1]],
                    ["transition model", transition_errors[0], transition_errors[1]],
                ],
            )
        )


def test_ablation_address_mapping(benchmark, bench_requests, capsys):
    """Channel-interleave granularity: burst-level vs bank-level-high."""
    from repro.dram.config import MemoryConfig

    trace = baseline_trace(WORKLOAD, bench_requests)

    def run():
        results = {}
        for mapping in ("ch_lo", "ch_hi"):
            stats = simulate_trace(trace, MemoryConfig(address_mapping=mapping))
            per_channel = [c.read_bursts + c.write_bursts for c in stats.channels]
            imbalance = max(per_channel) / max(1, min(per_channel))
            results[mapping] = (stats.avg_access_latency, imbalance)
        return results

    results = run_once(benchmark, run)
    # Burst-level interleaving balances channels far better for a
    # streaming device.
    assert results["ch_lo"][1] <= results["ch_hi"][1]
    rows = [[m, lat, imb] for m, (lat, imb) in results.items()]
    with capsys.disabled():
        print("\n== Ablation: address mapping ==")
        print(format_table(["mapping", "avg latency", "channel imbalance"], rows))


def test_ablation_mesh_vs_crossbar(benchmark, bench_requests, capsys):
    """Interconnect model: flat crossbar vs contention-aware 2D mesh."""
    from repro.sim.noc_driver import simulate_trace_mesh

    trace = baseline_trace("trex1", min(bench_requests, 8_000))

    def run():
        flat = simulate_trace(trace)
        meshed = simulate_trace_mesh(trace)
        return flat, meshed

    flat, meshed = run_once(benchmark, run)
    # Row-hit behaviour is a memory-side property: it must be stable
    # across interconnect models even though latency differs.
    base_hits = flat.read_row_hits
    mesh_hits = meshed.memory.read_row_hits
    assert abs(mesh_hits - base_hits) < base_hits * 0.25
    with capsys.disabled():
        print("\n== Ablation: interconnect model ==")
        print(
            format_table(
                ["model", "avg latency", "rd row hits", "avg NoC hops"],
                [
                    ["crossbar", flat.avg_access_latency, flat.read_row_hits, "-"],
                    [
                        "2D mesh",
                        meshed.memory.avg_access_latency,
                        meshed.memory.read_row_hits,
                        f"{meshed.mesh.avg_hops:.1f}",
                    ],
                ],
            )
        )


def test_ablation_markov_order(benchmark, bench_requests, capsys):
    """Paper claim: memoryless chains suffice once partitioning is done.

    Compares first-order McC against order-2/order-3 leaves on row-hit
    fidelity and profile size.
    """
    from repro.core.leaf import make_leaf_factory
    from repro.core.serialization import profile_size_bytes

    trace = baseline_trace(WORKLOAD, bench_requests)

    def run():
        results = {}
        for order in (1, 2, 3):
            profile = build_profile(trace, leaf_factory=make_leaf_factory(order))
            synthetic = synthesize(profile, seed=1)
            results[order] = (
                _row_hit_error(trace, synthetic),
                profile_size_bytes(profile),
            )
        return results

    results = run_once(benchmark, run)
    first_order_error = sum(results[1][0])
    # Extra history must not be *needed*: first-order error is already in
    # the same band as higher orders (within a few points), while the
    # profile only grows.
    for order in (2, 3):
        assert first_order_error <= sum(results[order][0]) + 6.0
        assert results[order][1] >= results[1][1] * 0.9

    rows = [
        [order, errors[0], errors[1], size]
        for order, (errors, size) in results.items()
    ]
    with capsys.disabled():
        print("\n== Ablation: Markov order ==")
        print(
            format_table(
                ["order", "rd row-hit err %", "wr row-hit err %", "profile bytes"],
                rows,
            )
        )


def test_ablation_feature_attribution(benchmark, bench_requests, capsys):
    """Which STM feature hurts: the address model or the op model?"""
    from repro.baselines.stm import (
        stm_address_leaf_factory,
        stm_leaf_factory,
        stm_operation_leaf_factory,
    )
    from repro.core.leaf import LeafModel

    trace = baseline_trace(WORKLOAD, bench_requests)

    def run():
        factories = {
            "McC (both)": LeafModel.fit,
            "STM addresses": stm_address_leaf_factory,
            "STM operations": stm_operation_leaf_factory,
            "STM (both)": stm_leaf_factory,
        }
        return {
            label: _row_hit_error(trace, synthesize(build_profile(trace, leaf_factory=f), seed=1))
            for label, f in factories.items()
        }

    results = run_once(benchmark, run)
    rows = [[label, e[0], e[1]] for label, e in results.items()]
    with capsys.disabled():
        print("\n== Ablation: STM feature attribution ==")
        print(format_table(["leaf models", "rd row-hit err %", "wr row-hit err %"], rows))
