"""Extension study (paper Sec. VI): ChargeCache on heterogeneous devices.

"ChargeCache is evaluated for CPU workloads, but Mocktails enables an
evaluation with heterogeneous SoCs to determine if non-CPU devices also
benefit from the design." — this bench runs exactly that study, driving
each device class from a Mocktails profile.
"""

from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize
from repro.dram.chargecache import ChargeCacheConfig
from repro.dram.config import MemoryConfig
from repro.eval.comparison import baseline_trace
from repro.eval.reporting import format_table
from repro.sim.driver import simulate_trace

from conftest import run_once

WORKLOADS = {"CPU": "crypto1", "DPU": "fbc-linear1", "GPU": "trex1", "VPU": "hevc1"}


def test_ext_chargecache(benchmark, bench_requests, capsys):
    def run():
        results = {}
        for device, name in WORKLOADS.items():
            trace = baseline_trace(name, bench_requests)
            synthetic = synthesize(build_profile(trace), seed=1)
            plain = simulate_trace(synthetic, MemoryConfig())
            boosted = simulate_trace(
                synthetic, MemoryConfig(charge_cache=ChargeCacheConfig())
            )
            results[device] = (plain.avg_access_latency, boosted.avg_access_latency)
        return results

    results = run_once(benchmark, run)
    rows = []
    for device, (plain, boosted) in results.items():
        saving = (plain - boosted) / plain * 100 if plain else 0.0
        rows.append([device, plain, boosted, saving])
        assert boosted <= plain + 1e-9  # the cache can only help

    # At least one device class must benefit measurably, demonstrating
    # the study Mocktails enables.
    assert any(plain > boosted for _, (plain, boosted) in results.items())

    with capsys.disabled():
        print("\n== Extension: ChargeCache latency by device (Mocktails-driven) ==")
        print(
            format_table(
                ["device", "baseline latency", "ChargeCache latency", "saving %"],
                rows,
            )
        )
