"""Fig. 17: file sizes of traces vs Mocktails models (metadata overhead)."""

from repro.eval.experiments import figure_17
from repro.eval.reporting import format_table

from conftest import run_once

BENCHMARKS = (
    "astar", "calculix", "gobmk", "hmmer", "libquantum", "mcf", "milc", "zeusmp",
)


def test_fig17_metadata(benchmark, spec_requests, capsys):
    result = run_once(
        benchmark, lambda: figure_17(spec_requests, benchmarks=BENCHMARKS)
    )

    rows = []
    total_trace, total_dynamic = 0, 0
    for name, sizes in result.items():
        rows.append(
            [
                name,
                sizes["trace"],
                sizes["dynamic"],
                sizes["fixed4k"],
                sizes["dynamic"] / sizes["trace"],
            ]
        )
        total_trace += sizes["trace"]
        total_dynamic += sizes["dynamic"]

    # Paper: profiles are smaller than traces overall (84% smaller across
    # SPEC). Highly regular benchmarks compress the most.
    assert total_dynamic < total_trace
    assert result["libquantum"]["dynamic"] < result["libquantum"]["trace"] * 0.5
    # Dynamic partitioning produces more leaves than fixed 4KB for most
    # benchmarks (finer partitions -> more metadata).
    finer = sum(1 for s in result.values() if s["dynamic"] >= s["fixed4k"])
    assert finer >= len(result) // 2

    with capsys.disabled():
        print("\n== Fig. 17: trace vs profile sizes (bytes, gzip) ==")
        print(
            format_table(
                ["benchmark", "trace", "dynamic prof", "4KB prof", "ratio"], rows
            )
        )
        reduction = 1 - total_dynamic / total_trace
        print(f"overall profile size reduction vs traces: {reduction:.1%}")
