"""Fig. 16: number of L1 write-backs across associativities for six SPEC
benchmarks: baseline vs Mocktails(Dynamic) vs HRD."""

from repro.eval.experiments import figure_16
from repro.eval.reporting import format_table
from repro.workloads.spec import FIG15_BENCHMARKS

from conftest import run_once


def test_fig16_writebacks(benchmark, spec_requests, capsys):
    result = run_once(benchmark, lambda: figure_16(spec_requests))

    rows = []
    for name in FIG15_BENCHMARKS:
        for associativity, series in sorted(result[name].items()):
            rows.append(
                [
                    name,
                    associativity,
                    series["baseline"],
                    series["dynamic"],
                    series["hrd"],
                ]
            )

    # Mocktails write-backs track the baseline level despite using the
    # same McC model for operations (no explicit clean/dirty states).
    for name in FIG15_BENCHMARKS:
        for associativity, series in result[name].items():
            baseline = series["baseline"]
            if baseline >= 50:
                assert abs(series["dynamic"] - baseline) < baseline * 0.8

    with capsys.disabled():
        print("\n== Fig. 16: L1 write-backs vs associativity ==")
        print(
            format_table(
                ["benchmark", "assoc", "baseline", "Mocktails(Dyn)", "HRD"], rows
            )
        )
