"""Fig. 7: average read and write queue length for each SoC device."""

from repro.eval.experiments import figure_7
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig07_queue_length(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_7(bench_requests))

    rows = []
    for device in ("CPU", "DPU", "GPU", "VPU"):
        read = result[device]["read_queue"]
        write = result[device]["write_queue"]
        rows.append(
            [
                device,
                read["baseline"], read["mcc"], read["stm"],
                write["baseline"], write["mcc"], write["stm"],
            ]
        )

    # Paper shape: GPU workloads have the longest queues (large requests
    # in dense bursts), and write queues are longer than read queues
    # (write-drain mode buffers writes).
    gpu = result["GPU"]
    for device in ("CPU", "DPU"):
        assert gpu["read_queue"]["baseline"] >= result[device]["read_queue"]["baseline"]
    for device in ("CPU", "DPU", "GPU", "VPU"):
        data = result[device]
        assert data["write_queue"]["baseline"] >= data["read_queue"]["baseline"] * 0.5

    with capsys.disabled():
        print("\n== Fig. 7: average queue length per device ==")
        print(
            format_table(
                [
                    "device",
                    "rdQ base", "rdQ McC", "rdQ STM",
                    "wrQ base", "wrQ McC", "wrQ STM",
                ],
                rows,
            )
        )
