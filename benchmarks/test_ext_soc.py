"""Extension study: a whole SoC of Mocktails profiles sharing memory.

The paper's end goal — heterogeneous SoC exploration without proprietary
traces. Four device profiles run concurrently against one Table III
memory system; per-device latency and bandwidth share come out.
"""

from repro.core.profiler import build_profile
from repro.eval.comparison import baseline_trace
from repro.eval.reporting import format_table
from repro.sim.multi_device import run_soc

from conftest import run_once

WORKLOADS = {"cpu": "crypto1", "dpu": "fbc-linear1", "gpu": "trex1", "vpu": "hevc1"}


def test_ext_soc_contention(benchmark, bench_requests, capsys):
    requests = min(bench_requests, 10_000)

    def run():
        devices = {
            device: build_profile(baseline_trace(name, requests))
            for device, name in WORKLOADS.items()
        }
        return run_soc(devices, seed=2)

    result = run_once(benchmark, run)

    total = sum(stats.requests for stats in result.devices.values())
    assert total == len(WORKLOADS) * requests
    assert result.memory.latency_count == total

    shares = result.bandwidth_share()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    # The GPU moves the most data (large requests).
    assert shares["gpu"] == max(shares.values())

    rows = [
        [
            device,
            stats.requests,
            stats.avg_access_latency,
            shares[device] * 100,
            stats.backpressure_delay,
        ]
        for device, stats in sorted(result.devices.items())
    ]
    with capsys.disabled():
        print("\n== Extension: 4-device SoC sharing one memory system ==")
        print(
            format_table(
                ["device", "requests", "avg latency", "bandwidth %", "backpressure"],
                rows,
            )
        )
        print(
            f"shared memory: {result.memory.read_bursts:,} read bursts, "
            f"{result.memory.write_bursts:,} write bursts"
        )
