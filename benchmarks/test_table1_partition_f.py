"""Table I: stride/size sequences of a reused dynamic partition.

The paper's point: splitting a reused spatial partition into two temporal
partitions makes the stride and size sequences Markov-perfect (a stride
of 64 is always followed by 64 within each temporal half).
"""

from collections import Counter

from repro.core.markov import MarkovChain
from repro.eval.experiments import table_1
from repro.eval.reporting import format_table

from conftest import run_once


def _markov_self_predictability(pairs):
    """Fraction of transitions that are the majority choice of their row."""
    values = [stride for stride, _ in pairs if stride is not None]
    if len(values) < 2:
        return 1.0
    rows = {}
    for current, nxt in zip(values, values[1:]):
        rows.setdefault(current, Counter())[nxt] += 1
    correct = sum(max(row.values()) for row in rows.values())
    total = sum(sum(row.values()) for row in rows.values())
    return correct / total if total else 1.0


def test_table1_partition_f(benchmark, bench_requests, capsys):
    data = run_once(benchmark, lambda: table_1(bench_requests))

    one = data["one_partition"]
    two = data["two_partitions"]
    assert len(one) == data["partition_size"]

    single_score = _markov_self_predictability(one)
    split_score = min(
        _markov_self_predictability(two[0]), _markov_self_predictability(two[1])
    )
    # Temporal splitting exposes (near-)constant per-phase patterns; in
    # the paper's Table I it reaches 100%. An arbitrary midpoint split
    # cannot be guaranteed to align with the reuse boundary, so allow a
    # small regression but require both to remain strongly predictable.
    assert split_score >= single_score - 0.15
    assert single_score > 0.5

    rows = [
        [i, s if s is not None else "N/A", size]
        for i, (s, size) in enumerate(one[:16])
    ]
    with capsys.disabled():
        print("\n== Table I: dynamic partition F (strides and sizes) ==")
        print(format_table(["#", "stride", "size"], rows))
        print(f"region: 0x{data['region'][0]:x}..0x{data['region'][1]:x}")
        print(
            f"Markov self-predictability: 1 temporal partition {single_score:.2f}, "
            f"2 temporal partitions {split_score:.2f}"
        )
