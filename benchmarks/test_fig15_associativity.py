"""Fig. 15: 32KB L1 miss rate across associativities (2/4/8/16) for six
SPEC benchmarks: baseline vs Mocktails(Dynamic) vs HRD."""

from repro.eval.experiments import figure_15
from repro.eval.reporting import format_table
from repro.workloads.spec import FIG15_BENCHMARKS

from conftest import run_once


def test_fig15_associativity(benchmark, spec_requests, capsys):
    result = run_once(benchmark, lambda: figure_15(spec_requests))

    rows = []
    for name in FIG15_BENCHMARKS:
        for associativity, series in sorted(result[name].items()):
            rows.append(
                [
                    name,
                    associativity,
                    series["baseline"],
                    series["dynamic"],
                    series["hrd"],
                ]
            )

    # Mocktails must track the baseline level per benchmark.
    for name in FIG15_BENCHMARKS:
        for associativity, series in result[name].items():
            assert abs(series["dynamic"] - series["baseline"]) < max(
                4.0, series["baseline"] * 0.6
            )

    with capsys.disabled():
        print("\n== Fig. 15: L1 miss rate (%) vs associativity ==")
        print(
            format_table(
                ["benchmark", "assoc", "baseline", "Mocktails(Dyn)", "HRD"], rows
            )
        )
