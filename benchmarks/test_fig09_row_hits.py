"""Fig. 9: average error for read and write row hits per SoC device."""

from repro.eval.experiments import figure_9
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig09_row_hits(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_9(bench_requests))

    rows = []
    for device in ("CPU", "DPU", "GPU", "VPU"):
        data = result[device]
        rows.append(
            [
                device,
                data["read_row_hits"]["mcc"],
                data["read_row_hits"]["stm"],
                data["write_row_hits"]["mcc"],
                data["write_row_hits"]["stm"],
            ]
        )
        # Paper headline: read row hits at most 7.3% error, write row
        # hits at most 2.8% (McC). Allow slack at reduced bench scale.
        assert data["read_row_hits"]["mcc"] < 15
        assert data["write_row_hits"]["mcc"] < 15

    with capsys.disabled():
        print("\n== Fig. 9: avg % error, row hits (geomean per device) ==")
        print(
            format_table(["device", "rd McC", "rd STM", "wr McC", "wr STM"], rows)
        )
