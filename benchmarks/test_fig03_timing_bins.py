"""Fig. 3: the timing (bursts and idle gaps) of HEVC1 requests."""

from repro.eval.experiments import figure_3
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig03_timing_bins(benchmark, bench_requests, capsys):
    bins = run_once(benchmark, lambda: figure_3(bench_requests))

    assert bins
    # Burstiness: bins are sparse relative to the time span (idle phases
    # produce missing bins), which is the signature Fig. 3 plots.
    span = bins[-1][0] - bins[0][0] + 1
    assert len(bins) <= span

    rows = [[index, count] for index, count in bins[:40]]
    with capsys.disabled():
        print("\n== Fig. 3: HEVC1 requests per 500k-cycle bin ==")
        print(format_table(["bin", "requests"], rows))
        occupancy = len(bins) / span
        print(f"bin occupancy {occupancy:.2%} (sparse bins = idle phases)")
