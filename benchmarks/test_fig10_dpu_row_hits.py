"""Fig. 10: number of row hits when decompressing frame buffers (DPU),
linear vs tiled access."""

from repro.eval.experiments import figure_10
from repro.eval.metrics import percent_error
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig10_dpu_row_hits(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_10(bench_requests))

    rows = []
    for workload in ("fbc-linear1", "fbc-tiled1"):
        for metric in ("read_row_hits", "write_row_hits"):
            series = result[workload][metric]
            rows.append(
                [
                    workload,
                    metric,
                    series["baseline"],
                    series["mcc"],
                    series["stm"],
                    percent_error(series["mcc"], series["baseline"]),
                    percent_error(series["stm"], series["baseline"]),
                ]
            )

    # Paper shape: McC is close on write row hits (< a few %); STM's
    # memoryless operation model is no better than McC.
    for workload in ("fbc-linear1", "fbc-tiled1"):
        write = result[workload]["write_row_hits"]
        mcc_error = percent_error(write["mcc"], write["baseline"])
        assert mcc_error < 12
        read = result[workload]["read_row_hits"]
        assert percent_error(read["mcc"], read["baseline"]) < 12

    with capsys.disabled():
        print("\n== Fig. 10: DPU frame-buffer row hits ==")
        print(
            format_table(
                ["workload", "metric", "baseline", "McC", "STM",
                 "McC err %", "STM err %"],
                rows,
            )
        )
