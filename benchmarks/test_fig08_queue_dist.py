"""Fig. 8: per-channel distribution of write queue lengths seen by
arriving requests, T-Rex1 GPU workload."""

from repro.eval.experiments import figure_8
from repro.eval.reporting import format_table

from conftest import run_once


def _histogram_distance(a, b):
    """Total-variation distance between two queue-length histograms."""
    total_a = sum(a.values()) or 1
    total_b = sum(b.values()) or 1
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0) / total_a - b.get(k, 0) / total_b) for k in keys)


def test_fig08_queue_dist(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_8(bench_requests))

    rows = []
    for channel, series in sorted(result.items()):
        mcc_distance = _histogram_distance(series["baseline"], series["mcc"])
        stm_distance = _histogram_distance(series["baseline"], series["stm"])
        mean = lambda h: (
            sum(k * v for k, v in h.items()) / (sum(h.values()) or 1)
        )
        rows.append(
            [
                channel,
                mean(series["baseline"]),
                mean(series["mcc"]),
                mean(series["stm"]),
                mcc_distance,
                stm_distance,
            ]
        )
        # The synthetic distribution must resemble the baseline.
        assert mcc_distance < 0.8

    with capsys.disabled():
        print("\n== Fig. 8: write-queue-length-seen distribution, T-Rex1 ==")
        print(
            format_table(
                [
                    "channel",
                    "mean base", "mean McC", "mean STM",
                    "TV-dist McC", "TV-dist STM",
                ],
                rows,
            )
        )
        channel0 = result[0]
        buckets = sorted(set(channel0["baseline"]) | set(channel0["mcc"]))[:12]
        detail = [
            [b, channel0["baseline"].get(b, 0), channel0["mcc"].get(b, 0),
             channel0["stm"].get(b, 0)]
            for b in buckets
        ]
        print("\nchannel 0 histogram head:")
        print(format_table(["queue len", "baseline", "McC", "STM"], detail))
