"""Extension study (paper Sec. VI future work): data-value modeling with
differential privacy.

Checks that the ε-DP value profile preserves the downstream
value-locality metrics the paper motivates (value prediction,
compression) while obscuring the exact payload sequence.
"""

from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.eval.comparison import baseline_trace
from repro.eval.reporting import format_table
from repro.values import (
    attach_values,
    bdi_compressibility,
    build_value_profile,
    last_value_prediction_rate,
    synthesize_with_values,
    value_entropy,
)

from conftest import run_once

KINDS = ("pixels", "counters", "sparse")


def test_ext_values_privacy(benchmark, bench_requests, capsys):
    trace = baseline_trace("fbc-linear1", min(bench_requests, 10_000))
    config = two_level_ts(500_000)
    request_profile = build_profile(trace, config)

    def run():
        results = {}
        for kind in KINDS:
            values = attach_values(trace, kind, seed=3)
            value_profile = build_value_profile(
                trace, values, config, epsilon=1.0, seed=3
            )
            synthetic, synthetic_values = synthesize_with_values(
                request_profile, value_profile, seed=5
            )
            results[kind] = {
                "orig": (
                    last_value_prediction_rate(trace, values),
                    bdi_compressibility(values),
                    value_entropy(values),
                ),
                "synth": (
                    last_value_prediction_rate(synthetic, synthetic_values),
                    bdi_compressibility(synthetic_values),
                    value_entropy(synthetic_values),
                ),
                "leaked": list(values) == list(synthetic_values),
            }
        return results

    results = run_once(benchmark, run)

    rows = []
    for kind, data in results.items():
        rows.append([kind, "original", *data["orig"]])
        rows.append([kind, "synthetic (ε=1)", *data["synth"]])
        # Privacy: the exact payload sequence must not survive.
        assert not data["leaked"]
        # Utility: compressibility class is preserved.
        assert abs(data["orig"][1] - data["synth"][1]) < 0.4

    # Relative ordering of compressibility across kinds is preserved.
    orig_order = sorted(KINDS, key=lambda k: results[k]["orig"][1])
    synth_order = sorted(KINDS, key=lambda k: results[k]["synth"][1])
    assert orig_order[-1] == synth_order[-1]

    with capsys.disabled():
        print("\n== Extension: value modeling under ε-differential privacy ==")
        print(
            format_table(
                ["kind", "stream", "last-value hit", "BDI compressible", "entropy"],
                rows,
            )
        )
