"""Fig. 12: read/write bursts arriving at each bank, FBC-Linear1 DPU."""

from repro.eval.experiments import figure_12
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig12_per_bank(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_12(bench_requests))

    for operation in ("read", "write"):
        rows = []
        for channel, series in sorted(result[operation].items()):
            banks = sorted(series["baseline"])
            for bank in banks:
                base = series["baseline"][bank]
                if base == 0 and series["mcc"][bank] == 0 and series["stm"][bank] == 0:
                    continue
                rows.append(
                    [channel, bank, base, series["mcc"][bank], series["stm"][bank]]
                )
        with capsys.disabled():
            print(f"\n== Fig. 12: {operation} bursts per bank, FBC-Linear1 ==")
            print(format_table(["channel", "bank", "baseline", "McC", "STM"], rows))

    # Paper signature (Fig. 12b): the baseline issues no writes to some
    # banks; McC must reproduce write-free banks.
    for channel, series in result["write"].items():
        baseline_free = {bank for bank, count in series["baseline"].items() if count == 0}
        mcc_free = {bank for bank, count in series["mcc"].items() if count == 0}
        if baseline_free:
            overlap = len(baseline_free & mcc_free) / len(baseline_free)
            assert overlap >= 0.5

    # Reads must hit every bank the baseline hits (wide linear scan).
    for channel, series in result["read"].items():
        baseline_banks = {b for b, c in series["baseline"].items() if c > 0}
        mcc_banks = {b for b, c in series["mcc"].items() if c > 0}
        assert baseline_banks <= mcc_banks | baseline_banks
        assert len(mcc_banks ^ baseline_banks) <= max(2, len(baseline_banks) // 2)
