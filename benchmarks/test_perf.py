"""Performance-regression snapshot (``-m perf``; excluded by default).

Times the core hot paths (profile build, synthesis, trace replay) and
the three slowest figure runners (Figs. 6, 13, 14) serially and under
the parallel prewarm, verifies the parallel results are bit-identical,
and writes the measurements to ``BENCH_perf.json`` at the repo root so
the performance trajectory is tracked PR over PR (``scripts/bench.sh``
diffs consecutive snapshots). Cross-run memoization (:mod:`repro.store`)
is measured the same way: fig6 is run cold through a temp store and
again warm, the warm result is asserted bit-identical, and the
cold-over-warm speedup is recorded alongside the parallel one. The
columnar trace backend (:mod:`repro.core.columnar`) is measured the same
way: the vectorized profile build and the batched cache sweep are timed
against their scalar twins on the 20k-request micro-benches, asserted
bit-identical, and the speedups recorded as ``speedup_profile_build`` /
``speedup_cache_sweep``. The out-of-core streaming build
(:mod:`repro.stream`) is held to the same bar (schema 5): the chunked
map-reduce build is timed against the in-memory columnar build on the
same 20k micro-bench, asserted bit-identical and within 1.5x, and the
tracemalloc peak allocation size of each build is recorded
(``peak_profile_memory_bytes`` vs ``peak_profile_memory_bytes_inmemory``).
Statistical sampling (:mod:`repro.sample`, schema 6) is measured on the
same micro-bench: the K-representative profile build is timed against
the full columnar build (floor: 3x faster at the ~10% default K) and
the weighted estimate's Fig. 6/13/14 geomean error is recorded and
asserted against the plan's declared error bound.
Batched memory-system replay (:mod:`repro.dram.batched`, schema 9) is
held to the same bar as the other columnar stages: the open-loop
crossbar + FR-FCFS DRAM replay of the 20k synthetic trace is timed
scalar vs batched, asserted bit-identical field-for-field, and the
speedup recorded as ``speedup_dram_replay`` (floor: 3x). The serial
figure runs additionally attribute their wall time to
``replay.synthesis`` / ``replay.crossbar`` / ``replay.dram`` phase
timers (``figure_phase_seconds``).
The job-queue service (:mod:`repro.engine` + :mod:`repro.service`,
schema 7) is stormed with 1,000 duplicate-heavy clients against one
server: the engine must compute each unique job exactly once
(single-flight + store memoization, asserted on the scheduler tallies),
and sustained jobs/sec are recorded cold (empty store) and warm (same
storm replayed, zero computations) along with the dedupe hit rate.
A run manifest (``BENCH_manifest.json``,
via :mod:`repro.obs`) is recorded alongside it with host info and the
observability counters accumulated during the figure runs.

Honesty note: the parallel-vs-serial comparison only means something
with at least two CPUs. On a single-CPU host the parallel runs are
skipped and the snapshot is flagged ``"degraded": true`` with a null
speedup, instead of recording pool overhead as if it were a slowdown.

Scale defaults to the bench scale (``MOCKTAILS_BENCH_REQUESTS`` /
``MOCKTAILS_BENCH_SPEC_REQUESTS``); override with
``MOCKTAILS_PERF_REQUESTS`` / ``MOCKTAILS_PERF_SPEC_REQUESTS``.
"""

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import pytest

from repro import obs, store
from repro.core.columnar import ColumnarTrace, numpy_or_none
from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.core.serialization import profile_to_dict
from repro.core.synthesis import synthesize
from repro.eval import experiments
from repro.eval.comparison import baseline_trace, clear_cache
from repro.eval.parallel import jobs_for, prewarm
from repro.sim.cache_driver import run_cache_trace
from repro.sim.driver import simulate_trace
from repro.stream import build_profile_streaming

from conftest import BENCH_REQUESTS, SPEC_REQUESTS

pytestmark = pytest.mark.perf

PERF_REQUESTS = int(os.environ.get("MOCKTAILS_PERF_REQUESTS", str(BENCH_REQUESTS)))
PERF_SPEC_REQUESTS = int(
    os.environ.get("MOCKTAILS_PERF_SPEC_REQUESTS", str(SPEC_REQUESTS))
)
CORE_REQUESTS = 20_000  # fixed scale for the synthesis/replay micro-timings

FIG13_INTERVALS = (100_000, 500_000, 1_000_000)
FIG14_BENCHMARKS = (
    "gobmk", "h264ref", "hmmer", "libquantum", "mcf", "milc", "soplex", "zeusmp",
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
MANIFEST_PATH = Path(__file__).resolve().parent.parent / "BENCH_manifest.json"


def _clear_caches():
    clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    experiments._SPEC_SIZE_CACHE.clear()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _timed_best(func, repeats=3):
    """Best-of-N timing for the sub-100ms backend micro-benches.

    The scalar-vs-columnar comparisons measure stages that finish in
    tens of milliseconds, where a single scheduler hiccup can swamp the
    signal; the minimum over a few repeats is the standard estimator of
    the undisturbed runtime (same rationale as ``timeit``).
    """
    result = None
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_perf_snapshot(bench_jobs, capsys):
    jobs = bench_jobs if bench_jobs > 1 else 4
    cpus = os.cpu_count() or 1
    degraded = cpus < 2
    timings = {}

    # -- core hot paths (observability disabled: measures the default) -----
    trace = baseline_trace("hevc1", CORE_REQUESTS)
    profile, timings["profile_build"] = _timed(
        lambda: build_profile(trace, two_level_ts(), name="hevc1")
    )
    synthetic, timings["synthesize"] = _timed(lambda: synthesize(profile, seed=1))
    _, timings["replay"] = _timed(lambda: simulate_trace(synthetic))

    # -- columnar backend vs scalar (20k-request micro-benches) ------------
    # The columnar runs take their input as a ColumnarTrace built outside
    # the timer: converting per-request objects to columns is a one-time
    # ingest cost, not part of the stage being vectorized.
    have_numpy = numpy_or_none() is not None
    profile_scalar, timings["profile_build_scalar"] = _timed_best(
        lambda: build_profile(trace, two_level_ts(), name="hevc1", backend="scalar")
    )
    columns = ColumnarTrace.from_trace(trace)
    profile_columnar, timings["profile_build_columnar"] = _timed_best(
        lambda: build_profile(columns, two_level_ts(), name="hevc1", backend="columnar")
    )
    columnar_identical = profile_to_dict(profile_columnar) == profile_to_dict(
        profile_scalar
    )
    assert columnar_identical, "columnar profile differs from scalar"

    sweep_trace = baseline_trace("mcf", CORE_REQUESTS)
    sweep_scalar, timings["cache_sweep_scalar"] = _timed_best(
        lambda: run_cache_trace(sweep_trace, backend="scalar")
    )
    sweep_columns = ColumnarTrace.from_trace(sweep_trace)
    sweep_columnar, timings["cache_sweep_columnar"] = _timed_best(
        lambda: run_cache_trace(sweep_columns, backend="columnar")
    )
    assert sweep_columnar.l1 == sweep_scalar.l1, "batched L1 stats differ from scalar"
    assert sweep_columnar.l2 == sweep_scalar.l2, "batched L2 stats differ from scalar"

    # -- batched memory-system replay vs scalar (schema 9) -----------------
    # The same 20k synthetic trace the core "replay" timing uses, through
    # both engines; MemorySystemStats must match field for field.
    replay_scalar, timings["dram_replay_scalar"] = _timed_best(
        lambda: simulate_trace(synthetic, backend="scalar")
    )
    replay_columns = ColumnarTrace.from_trace(synthetic)
    replay_batched, timings["dram_replay_batched"] = _timed_best(
        lambda: simulate_trace(replay_columns, backend="columnar")
    )
    dram_replay_identical = replay_batched == replay_scalar
    assert dram_replay_identical, "batched DRAM replay stats differ from scalar"
    speedup_dram_replay = None
    if have_numpy and timings["dram_replay_batched"]:
        speedup_dram_replay = (
            timings["dram_replay_scalar"] / timings["dram_replay_batched"]
        )
        assert speedup_dram_replay >= 3.0, (
            f"batched DRAM replay only {speedup_dram_replay:.2f}x faster "
            "than scalar (floor: 3x)"
        )

    # Without numpy both "columnar" runs fall back to scalar code, so the
    # ratio measures nothing; record null speedups instead of noise.
    speedup_profile_build = None
    speedup_cache_sweep = None
    if have_numpy:
        speedup_profile_build = (
            timings["profile_build_scalar"] / timings["profile_build_columnar"]
            if timings["profile_build_columnar"]
            else None
        )
        speedup_cache_sweep = (
            timings["cache_sweep_scalar"] / timings["cache_sweep_columnar"]
            if timings["cache_sweep_columnar"]
            else None
        )

    # -- streaming (out-of-core) build vs in-memory columnar ---------------
    # Same 20k micro-bench, default 8192-request blocks: the chunked
    # map-reduce build must stay within 1.5x of the one-shot columnar
    # build while holding only O(block) rows at a time.
    profile_streamed, timings["profile_build_streamed"] = _timed_best(
        lambda: build_profile_streaming(
            columns.iter_blocks(8192), two_level_ts(), name="hevc1"
        )
    )
    streaming_identical = profile_to_dict(profile_streamed) == profile_to_dict(
        profile_scalar
    )
    assert streaming_identical, "streamed profile differs from single-pass"

    streaming_over_columnar = None
    if have_numpy and timings["profile_build_columnar"]:
        streaming_over_columnar = (
            timings["profile_build_streamed"] / timings["profile_build_columnar"]
        )
        assert streaming_over_columnar < 1.5, (
            f"streaming build {streaming_over_columnar:.2f}x slower than "
            "in-memory columnar (budget: 1.5x)"
        )

    # -- statistical sampling (repro.sample): K-representative build -------
    # Same 20k hevc1 micro-bench: fingerprint + cluster + fit only the
    # ~10% representative intervals, vs the full columnar build above.
    # The estimate must honour its own declared error bound (schema 6).
    from repro.sample import (
        build_sampled_profile,
        default_sample_k,
        interval_slices,
        sampling_comparison,
    )

    sample_intervals = len(interval_slices(columns, two_level_ts().layers[0]))
    sample_k = default_sample_k(sample_intervals)
    (_, sample_plan), timings["sampled_profile_build"] = _timed_best(
        lambda: build_sampled_profile(
            columns, two_level_ts(), k=sample_k, name="hevc1", backend="columnar"
        )
    )
    assert not sample_plan.exact, (
        f"sampling bench degenerate: k={sample_k} covers all "
        f"{sample_intervals} intervals"
    )
    speedup_sampled_profile_build = None
    if have_numpy and timings["sampled_profile_build"]:
        speedup_sampled_profile_build = (
            timings["profile_build_columnar"] / timings["sampled_profile_build"]
        )
        assert speedup_sampled_profile_build >= 3.0, (
            f"sampled profile build only {speedup_sampled_profile_build:.2f}x "
            f"faster than full (k={sample_k}/{sample_intervals}; floor: 3x)"
        )

    sample_report = sampling_comparison(
        trace, two_level_ts(), k=sample_k, name="hevc1"
    )
    sampled_geomean_error_percent = sample_report.geomean_error_percent
    sampled_error_bound_percent = sample_report.error_bound_percent
    sampled_within_bound = sample_report.within_bound
    assert sampled_within_bound, (
        f"sampled estimate error {sampled_geomean_error_percent:.2f}% exceeds "
        f"its declared bound {sampled_error_bound_percent:.2f}%"
    )

    # Peak traced allocations of each build: the streamed number is what
    # the O(block) claim looks like in bytes (see PERFORMANCE.md).
    _, peak_profile_memory_bytes = obs.measure_peak_memory(
        lambda: build_profile_streaming(columns.iter_blocks(8192), two_level_ts())
    )
    _, peak_profile_memory_bytes_inmemory = obs.measure_peak_memory(
        lambda: build_profile(trace, two_level_ts(), stream=False)
    )

    # -- job-queue service storm (repro.engine + repro.service) ------------
    # A thousand logical clients (at most 128 concurrent sockets) hammer
    # one server with profile jobs drawn from STORM_UNIQUE distinct
    # specs. The engine must compute each unique spec exactly once —
    # duplicates either join the in-flight computation (single-flight)
    # or read the payload back from the store — however the storm
    # interleaves. Cold = empty store; warm = the same storm replayed
    # against the now-full store (zero computations).
    import asyncio
    import threading

    from repro.engine import Scheduler
    from repro.service import JobServer
    from repro.service.client import storm as service_storm

    STORM_CLIENTS = int(os.environ.get("MOCKTAILS_STORM_CLIENTS", "1000"))
    STORM_UNIQUE = 10
    storm_workloads = ("hevc1", "trex1")

    def _storm_spec(index):
        spec = index % STORM_UNIQUE
        return {
            "name": storm_workloads[spec % len(storm_workloads)],
            "num_requests": 2_000 + 200 * (spec // len(storm_workloads)),
        }

    def _run_storm(port):
        submissions = [[("profile", _storm_spec(i))] for i in range(STORM_CLIENTS)]
        start = time.perf_counter()
        responses = service_storm("127.0.0.1", port, submissions, concurrency=128)
        elapsed = time.perf_counter() - start
        assert all(r[0]["type"] == "result" for r in responses), (
            "storm client got a non-result terminal response"
        )
        return elapsed

    storm_scheduler = Scheduler(
        workers=jobs, backend="thread", queue_limit=max(256, STORM_CLIENTS)
    )
    storm_server = JobServer(storm_scheduler, port=0, client_quota=4)
    storm_ready = threading.Event()
    storm_state = {}

    async def _storm_main():
        await storm_server.start()
        storm_state["loop"] = asyncio.get_running_loop()
        storm_ready.set()
        await storm_server.run()

    storm_thread = threading.Thread(
        target=lambda: asyncio.run(_storm_main()), daemon=True
    )
    with tempfile.TemporaryDirectory(prefix="repro-storm-cache-") as storm_cache:
        try:
            store.configure(storm_cache)
            storm_thread.start()
            assert storm_ready.wait(10), "storm server did not start"
            timings["service_storm_cold"] = _run_storm(storm_server.port)
            storm_cold_tally = dict(storm_scheduler.tally)
            timings["service_storm_warm"] = _run_storm(storm_server.port)
            storm_warm_tally = dict(storm_scheduler.tally)
        finally:
            storm_state["loop"].call_soon_threadsafe(storm_server.request_stop)
            storm_thread.join(10)
            storm_scheduler.close(cancel_pending=True)
            store.deactivate()

    storm_unique_computes = storm_cold_tally["executed"]
    storm_exactly_once = storm_unique_computes == STORM_UNIQUE
    assert storm_exactly_once, (
        f"storm computed {storm_unique_computes} jobs for "
        f"{STORM_UNIQUE} unique specs (single-flight broken)"
    )
    # The warm replay must not compute anything at all.
    assert storm_warm_tally["executed"] == storm_cold_tally["executed"], (
        "warm storm recomputed jobs the store already holds"
    )
    storm_cold_total = storm_cold_tally["submitted"] + storm_cold_tally["deduped"]
    assert storm_cold_total == STORM_CLIENTS
    storm_dedupe_hit_rate = (storm_cold_total - storm_unique_computes) / storm_cold_total
    storm_cold_jobs_per_sec = (
        STORM_CLIENTS / timings["service_storm_cold"]
        if timings["service_storm_cold"]
        else None
    )
    storm_warm_jobs_per_sec = (
        STORM_CLIENTS / timings["service_storm_warm"]
        if timings["service_storm_warm"]
        else None
    )

    # -- figure runners: serial (cold caches, metrics registry active) -----
    registry = obs.enable()
    try:
        runners = {
            "fig6": lambda: experiments.figure_6(PERF_REQUESTS),
            "fig13": lambda: experiments.figure_13(
                PERF_REQUESTS, intervals=FIG13_INTERVALS
            ),
            "fig14": lambda: experiments.figure_14(
                PERF_SPEC_REQUESTS, benchmarks=FIG14_BENCHMARKS
            ),
        }
        job_lists = {
            "fig6": jobs_for("fig6", PERF_REQUESTS),
            "fig13": jobs_for("fig13", PERF_REQUESTS, intervals=FIG13_INTERVALS),
            "fig14": jobs_for("fig14", PERF_SPEC_REQUESTS, benchmarks=FIG14_BENCHMARKS),
        }

        phases_before = registry.phases
        serial_results = {}
        for name, runner in runners.items():
            _clear_caches()
            serial_results[name], timings[f"{name}_serial"] = _timed(runner)
        phases_after = registry.phases
        # Where the serial figure wall time went: synthesis (profile build
        # + synthetic-trace generation) vs crossbar injection vs the final
        # DRAM drain (schema 9).
        figure_phase_seconds = {
            name: round(phases_after.get(name, 0.0) - phases_before.get(name, 0.0), 4)
            for name in ("replay.synthesis", "replay.crossbar", "replay.dram")
        }

        # -- figure runners: parallel prewarm + aggregate ------------------
        parallel_identical = None
        if not degraded:
            parallel_identical = True
            for name, runner in runners.items():
                _clear_caches()
                start = time.perf_counter()
                prewarm(job_lists[name], processes=jobs)
                result = runner()
                timings[f"{name}_jobs{jobs}"] = time.perf_counter() - start
                assert result == serial_results[name], (
                    f"{name}: parallel result differs from serial"
                )

        # -- cross-run memoization: populate the store cold, then time a
        # warm run that loads every payload instead of simulating ------
        warm_identical = None
        warm_speedup = None
        warm_hits = None
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
            try:
                store.configure(cache_dir)
                _clear_caches()
                start = time.perf_counter()
                prewarm(job_lists["fig6"], processes=1)
                populate_result = experiments.figure_6(PERF_REQUESTS)
                timings["fig6_cold_store"] = time.perf_counter() - start

                _clear_caches()  # a "fresh process": only the disk is warm
                memo = store.configure(cache_dir)
                start = time.perf_counter()
                prewarm(job_lists["fig6"], processes=1)
                warm_result = experiments.figure_6(PERF_REQUESTS)
                timings["fig6_warm"] = time.perf_counter() - start
                warm_hits = memo.hits
            finally:
                store.deactivate()
        warm_identical = (
            warm_result == serial_results["fig6"]
            and populate_result == serial_results["fig6"]
        )
        assert warm_identical, "warm-cache fig6 differs from cold serial"
        assert warm_hits == len(job_lists["fig6"])
        warm_speedup = (
            timings["fig6_serial"] / timings["fig6_warm"]
            if timings["fig6_warm"]
            else None
        )

        # -- whole-program lint: cold parse vs warm incremental cache ------
        # The two-phase engine re-parses nothing on a warm run: every
        # per-file analysis must come back from the content-hash cache
        # (only the project-phase conc rules recompute).
        from repro.lint.cache import LintCache
        from repro.lint.engine import lint_project

        lint_target = str(Path(__file__).resolve().parent.parent / "src" / "repro")
        with tempfile.TemporaryDirectory(prefix="repro-bench-lint-") as lint_dir:
            lint_cache = LintCache(Path(lint_dir))
            cold_report, timings["lint_full"] = _timed(
                lambda: lint_project([lint_target], cache=lint_cache)
            )
            warm_report, timings["lint_warm"] = _timed(
                lambda: lint_project([lint_target], cache=lint_cache)
            )
        lint_files = cold_report.files
        assert cold_report.cache_misses == lint_files
        assert warm_report.cache_hits == lint_files, (
            f"warm lint re-parsed files: {warm_report.cache_misses} misses"
        )
        assert warm_report.cache_misses == 0
        assert [f.to_dict() for f in warm_report.findings] == [
            f.to_dict() for f in cold_report.findings
        ], "warm lint findings differ from cold"

        serial_total = sum(timings[f"{name}_serial"] for name in runners)
        timings["figures_serial_total"] = serial_total
        speedup = None
        if not degraded:
            parallel_total = sum(timings[f"{name}_jobs{jobs}"] for name in runners)
            timings[f"figures_jobs{jobs}_total"] = parallel_total
            speedup = serial_total / parallel_total if parallel_total else None

        snapshot = {
            "schema": 9,
            "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "host": {
                "cpus": cpus,
                "python": platform.python_version(),
                "numpy": have_numpy,
            },
            "scale": {
                "core_requests": CORE_REQUESTS,
                "figure_requests": PERF_REQUESTS,
                "spec_requests": PERF_SPEC_REQUESTS,
                "jobs": jobs,
            },
            # With < 2 CPUs a parallel run can only measure pool overhead,
            # so the comparison is skipped rather than recorded as a bogus
            # "slowdown" (see PERFORMANCE.md).
            "degraded": degraded,
            "parallel_identical": parallel_identical,
            "speedup_serial_over_parallel": speedup,
            # Cross-run memoization (repro.store): a warm fig6 loads
            # every simulation payload from the content-addressed store.
            "warm_identical": warm_identical,
            "warm_cache_hits": warm_hits,
            "speedup_cold_over_warm": warm_speedup,
            # Columnar trace backend (repro.core.columnar): vectorized
            # profile build and batched cache sweep vs their scalar
            # twins, on bit-identical outputs. Null when numpy is absent
            # (the "columnar" runs then fall back to scalar code).
            "columnar_identical": columnar_identical,
            "speedup_profile_build": speedup_profile_build,
            "speedup_cache_sweep": speedup_cache_sweep,
            # Batched memory-system replay (repro.dram.batched, schema 9):
            # the open-loop crossbar + FR-FCFS replay vs its scalar twin
            # on bit-identical MemorySystemStats, plus the serial figure
            # wall time attributed to synthesis/crossbar/DRAM phases.
            "dram_replay_identical": dram_replay_identical,
            "speedup_dram_replay": speedup_dram_replay,
            "figure_phase_seconds": figure_phase_seconds,
            # Streaming map-reduce build (repro.stream): bit-identical to
            # the single-pass build, throughput within 1.5x of in-memory
            # columnar (null ratio without numpy), with tracemalloc peak
            # allocation sizes for both builds (schema 5).
            "streaming_identical": streaming_identical,
            "streaming_over_columnar": streaming_over_columnar,
            "peak_profile_memory_bytes": peak_profile_memory_bytes,
            "peak_profile_memory_bytes_inmemory": peak_profile_memory_bytes_inmemory,
            # Statistical sampling (repro.sample): K-representative
            # profile build speedup over the full columnar build (null
            # without numpy), and the weighted estimate's measured
            # Fig. 6/13/14 geomean error against its declared bound
            # (schema 6).
            "sample_intervals": sample_intervals,
            "sample_k": sample_k,
            "speedup_sampled_profile_build": speedup_sampled_profile_build,
            "sampled_geomean_error_percent": sampled_geomean_error_percent,
            "sampled_error_bound_percent": sampled_error_bound_percent,
            "sampled_within_bound": sampled_within_bound,
            # Job-queue service storm (repro.engine + repro.service,
            # schema 7): STORM_CLIENTS duplicate-heavy clients against
            # one server. Each unique job spec computes exactly once
            # (in-flight dedupe + store memoization); sustained
            # jobs/sec are recorded cold (empty store) and warm (the
            # same storm replayed, zero computations).
            "storm_clients": STORM_CLIENTS,
            "storm_unique_jobs": STORM_UNIQUE,
            "storm_unique_computes": storm_unique_computes,
            "storm_exactly_once": storm_exactly_once,
            "storm_dedupe_hit_rate": round(storm_dedupe_hit_rate, 4),
            "storm_cold_jobs_per_sec": storm_cold_jobs_per_sec,
            "storm_warm_jobs_per_sec": storm_warm_jobs_per_sec,
            # Whole-program lint (repro.lint, schema 8): full src/repro
            # wall time cold vs warm through the incremental per-file
            # cache; a warm run re-parses nothing.
            "lint_files": lint_files,
            "lint_full_wall_seconds": round(timings["lint_full"], 4),
            "lint_warm_wall_seconds": round(timings["lint_warm"], 4),
            "lint_cache_hits_warm": warm_report.cache_hits,
            "timings_seconds": {key: round(value, 4) for key, value in timings.items()},
        }
        RESULT_PATH.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

        for name, seconds in timings.items():
            registry.add_phase_time(name, seconds)
        manifest = obs.build_manifest(
            registry,
            command="scripts/bench.sh",
            scale=snapshot["scale"],
            seeds={"base": 0, "synthesis": 1},
            extra={"degraded": degraded},
        )
        obs.write_manifest(MANIFEST_PATH, manifest)
    finally:
        obs.disable()

    with capsys.disabled():
        mode = "degraded: 1 cpu, parallel skipped" if degraded else f"jobs={jobs}"
        print(f"\n== perf snapshot ({PERF_REQUESTS:,} requests, {mode}) ==")
        for key in sorted(timings):
            print(f"  {key:>24}: {timings[key]:8.3f}s")
        if warm_speedup is not None:
            print(f"  warm-cache fig6 speedup: {warm_speedup:.1f}x "
                  f"({warm_hits} store hits, bit-identical)")
        if speedup_profile_build is not None:
            print(f"  columnar profile build:  {speedup_profile_build:.1f}x "
                  "over scalar (bit-identical)")
        if speedup_cache_sweep is not None:
            print(f"  batched cache sweep:     {speedup_cache_sweep:.1f}x "
                  "over scalar (bit-identical)")
        if speedup_dram_replay is not None:
            print(f"  batched DRAM replay:     {speedup_dram_replay:.1f}x "
                  "over scalar (bit-identical)")
        print("  figure phases:           "
              + ", ".join(
                  f"{name.split('.')[1]} {seconds:.1f}s"
                  for name, seconds in sorted(figure_phase_seconds.items())
              ))
        if streaming_over_columnar is not None:
            print(f"  streamed profile build:  {streaming_over_columnar:.2f}x "
                  "of in-memory columnar (bit-identical)")
        if speedup_sampled_profile_build is not None:
            print(f"  sampled profile build:   {speedup_sampled_profile_build:.1f}x "
                  f"over full (k={sample_k}/{sample_intervals}, "
                  f"err {sampled_geomean_error_percent:.1f}% <= "
                  f"bound {sampled_error_bound_percent:.1f}%)")
        if storm_cold_jobs_per_sec is not None:
            print(f"  service storm:           {STORM_CLIENTS} clients, "
                  f"{storm_unique_computes} computes "
                  f"(dedupe {storm_dedupe_hit_rate:.1%}), "
                  f"{storm_cold_jobs_per_sec:,.0f} jobs/s cold / "
                  f"{storm_warm_jobs_per_sec:,.0f} warm")
        print(f"  peak build memory:       "
              f"{peak_profile_memory_bytes / 1e6:.1f} MB streamed vs "
              f"{peak_profile_memory_bytes_inmemory / 1e6:.1f} MB in-memory")
        print(f"  -> {RESULT_PATH}")
        print(f"  -> {MANIFEST_PATH}")
