"""Fig. 2: requests from a 4KB memory region of a VPU workload (HEVC1)."""

from repro.eval.experiments import figure_2
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig02_region_requests(benchmark, bench_requests, capsys):
    records = run_once(benchmark, lambda: figure_2(bench_requests))

    assert records, "the busiest 4KB region must contain requests"
    assert all(0 <= r["offset"] < 4096 for r in records)
    sizes = {r["size"] for r in records}
    assert 64 in sizes or 128 in sizes

    rows = [[r["order"], r["offset"], r["size"], r["operation"]] for r in records[:30]]
    with capsys.disabled():
        print("\n== Fig. 2: requests in the busiest 4KB region of HEVC1 ==")
        print(format_table(["order", "byte offset", "size", "op"], rows))
        print(f"({len(records)} requests total in the region)")
