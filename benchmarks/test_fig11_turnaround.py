"""Fig. 11: average number of reads sent to DRAM before switching to
writes (reads per turnaround), per memory channel, DPU workloads."""

from repro.eval.experiments import figure_11
from repro.eval.metrics import percent_error
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig11_turnaround(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_11(bench_requests))

    rows = []
    mcc_errors, stm_errors = [], []
    for workload, channels in result.items():
        for channel, series in sorted(channels.items()):
            mcc_error = percent_error(series["mcc"], series["baseline"])
            stm_error = percent_error(series["stm"], series["baseline"])
            mcc_errors.append(mcc_error)
            stm_errors.append(stm_error)
            rows.append(
                [
                    workload, channel,
                    series["baseline"], series["mcc"], series["stm"],
                    mcc_error, stm_error,
                ]
            )

    # Paper: the injection process is a source of error here (McC 4-56%),
    # but McC tracks the baseline level; sanity-check the magnitudes.
    assert all(error < 120 for error in mcc_errors)
    assert sum(mcc_errors) / len(mcc_errors) < 60

    with capsys.disabled():
        print("\n== Fig. 11: reads per turnaround per channel (DPU) ==")
        print(
            format_table(
                ["workload", "ch", "baseline", "McC", "STM",
                 "McC err %", "STM err %"],
                rows,
            )
        )
