"""Fig. 14: cache miss rates (geomean) for two cache configurations:
baseline vs Mocktails(Dynamic) vs Mocktails(4KB) vs HRD."""

from repro.eval.experiments import SEC5_SERIES, figure_14
from repro.eval.reporting import format_table

from conftest import run_once

# A representative subset keeps the bench quick; set
# MOCKTAILS_BENCH_SPEC_REQUESTS / pass benchmarks=None for all 23.
BENCHMARKS = (
    "gobmk", "h264ref", "hmmer", "libquantum", "mcf", "milc", "soplex", "zeusmp",
)


def test_fig14_cache_miss(benchmark, spec_requests, capsys):
    result = run_once(
        benchmark, lambda: figure_14(spec_requests, benchmarks=BENCHMARKS)
    )

    rows = []
    for config_label, series in result.items():
        for name in SEC5_SERIES:
            rows.append(
                [
                    config_label,
                    name,
                    series[name]["l1_miss_rate"],
                    series[name]["l2_miss_rate"],
                ]
            )

    for config_label, series in result.items():
        baseline_l1 = series["baseline"]["l1_miss_rate"]
        dynamic_error = abs(series["dynamic"]["l1_miss_rate"] - baseline_l1)
        fixed_error = abs(series["fixed4k"]["l1_miss_rate"] - baseline_l1)
        # Paper: Mocktails (Dynamic) closely matches the baseline and
        # Mocktails (4KB) is slightly worse.
        assert dynamic_error < baseline_l1 * 0.6 + 2
        assert dynamic_error <= fixed_error + 2.0

    with capsys.disabled():
        print("\n== Fig. 14: L1/L2 miss rates (geomean %, subset) ==")
        print(format_table(["config", "series", "L1 miss %", "L2 miss %"], rows))
