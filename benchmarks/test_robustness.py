"""Robustness studies backing the paper's methodology notes.

1. **Downscaling** (Sec. IV-A): "Our main goal is to validate that
   Mocktails recreates the different behaviour ... this can be
   effectively achieved with down-scaled inputs and/or shortened
   traces." — accuracy should be stable as the trace shrinks.
2. **Prefetcher preservation**: a Mocktails clone must present the same
   stream structure to a hardware prefetcher as the original workload
   (the cache-consumer analogue of the Sec. V claims).
"""

from repro.cache.cache import CacheConfig
from repro.cache.prefetch import PrefetchingCache, StridePrefetcher
from repro.core.hierarchy import two_level_rs
from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize
from repro.eval.comparison import baseline_trace
from repro.eval.metrics import percent_error
from repro.eval.reporting import format_table
from repro.sim.driver import simulate_trace
from repro.workloads.registry import make_generator

from conftest import run_once


def test_robustness_downscaling(benchmark, bench_requests, capsys):
    workload = "fbc-linear1"

    def run():
        results = {}
        for scale in (bench_requests // 4, bench_requests // 2, bench_requests):
            trace = baseline_trace(workload, scale)
            synthetic = synthesize(build_profile(trace), seed=1)
            base = simulate_trace(trace)
            synth = simulate_trace(synthetic)
            results[scale] = (
                percent_error(synth.read_row_hits, base.read_row_hits),
                percent_error(synth.write_row_hits, base.write_row_hits),
            )
        return results

    results = run_once(benchmark, run)
    # Accuracy holds at every scale (the paper's downscaling argument).
    for scale, (read_error, write_error) in results.items():
        assert read_error < 10, (scale, read_error)
        assert write_error < 12, (scale, write_error)

    rows = [[scale, e[0], e[1]] for scale, e in sorted(results.items())]
    with capsys.disabled():
        print("\n== Robustness: accuracy vs trace length ==")
        print(format_table(
            ["requests", "rd row-hit err %", "wr row-hit err %"], rows))


def test_robustness_prefetcher_preservation(benchmark, spec_requests, capsys):
    def run():
        results = {}
        for name in ("libquantum", "gobmk"):
            trace = make_generator(name).generate(min(spec_requests, 15_000))
            profile = build_profile(trace, two_level_rs(len(trace) // 4))
            synthetic = synthesize(profile, seed=1)
            pair = []
            for source in (trace, synthetic):
                cache = PrefetchingCache(
                    CacheConfig(32 * 1024, 4), StridePrefetcher(degree=2)
                )
                cache.run(source)
                pair.append(
                    (cache.demand_stats.miss_rate * 100, cache.stats.accuracy * 100)
                )
            results[name] = pair
        return results

    results = run_once(benchmark, run)
    rows = []
    for name, (base, synth) in results.items():
        rows.append([name, "baseline", base[0], base[1]])
        rows.append([name, "mocktails", synth[0], synth[1]])
        # The clone must preserve both the miss rate under prefetching
        # and the prefetcher's accuracy class.
        assert abs(base[0] - synth[0]) < max(3.0, base[0] * 0.4)
        assert abs(base[1] - synth[1]) < 25

    with capsys.disabled():
        print("\n== Robustness: prefetcher sees the same structure ==")
        print(format_table(
            ["benchmark", "stream", "L1 miss % (w/ pf)", "pf accuracy %"], rows))
