"""Fig. 6: average error per device for the number of DRAM bursts."""

from repro.eval.experiments import figure_6
from repro.eval.reporting import format_table

from conftest import run_once


def test_fig06_dram_bursts(benchmark, bench_requests, capsys):
    result = run_once(benchmark, lambda: figure_6(bench_requests))

    rows = []
    for device in ("CPU", "DPU", "GPU", "VPU"):
        data = result[device]
        rows.append(
            [
                device,
                data["read_bursts"]["mcc"],
                data["read_bursts"]["stm"],
                data["write_bursts"]["mcc"],
                data["write_bursts"]["stm"],
            ]
        )
        # Paper: McC burst error stays in single digits everywhere
        # (highest was 7.5% for CPU write bursts).
        assert data["read_bursts"]["mcc"] < 10
        assert data["write_bursts"]["mcc"] < 10

    with capsys.disabled():
        print("\n== Fig. 6: avg % error, DRAM bursts (geomean per device) ==")
        print(
            format_table(
                ["device", "rd McC", "rd STM", "wr McC", "wr STM"], rows
            )
        )
