"""Fig. 13: memory access latency error vs temporal partition size."""

from repro.eval.experiments import figure_13
from repro.eval.reporting import format_table

from conftest import run_once

INTERVALS = (100_000, 500_000, 1_000_000)


def test_fig13_sensitivity(benchmark, bench_requests, capsys):
    result = run_once(
        benchmark, lambda: figure_13(bench_requests, intervals=INTERVALS)
    )

    rows = []
    for device, series in result.items():
        for interval, error in series:
            rows.append([device, interval, error])

    # Paper: error is low (< 8%) for all cycle counts; allow slack at
    # bench scale but the level must stay moderate.
    for device, series in result.items():
        for interval, error in series:
            assert error < 35, f"{device}@{interval}: {error}"

    with capsys.disabled():
        print("\n== Fig. 13: avg memory access latency error vs interval ==")
        print(format_table(["device", "interval (cycles)", "error %"], rows))
